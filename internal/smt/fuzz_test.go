package smt

import (
	"math/bits"
	"testing"
)

// FuzzSolver cross-checks the bit-blasting solver against brute-force
// enumeration on small-bitwidth formulas. The fuzz input drives a tiny
// stack machine that assembles a random term over three variables
// (a:2, b:3, c:1 — a 64-point joint domain), asserts its 1-bit
// reduction, and solves:
//
//   - Sat: the returned model, evaluated concretely, must satisfy the
//     constraint — the solver may never invent a model.
//   - Unsat: exhaustive search over all 64 assignments must agree —
//     the solver may never miss a solution.
//
// Together the two directions pin soundness and completeness of the
// blaster + CDCL core for every term kind the builder can emit.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 0, 1, 0})                            // eq(a, b)
	f.Add([]byte{4, 0, 1, 0, 9, 5, 0, 0})                // ult over an add
	f.Add([]byte{6, 0, 0, 0, 17, 5, 0, 0, 11, 2, 5, 6})  // mul, redand, ite
	f.Add([]byte{13, 0, 1, 0, 12, 5, 1, 2, 15, 5, 1, 0}) // concat, extract, shl
	f.Add([]byte{19, 1, 0, 0, 3, 5, 2, 0, 10, 5, 3, 0})  // redxor, xor, ule
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewSolver()
		constraint := buildFuzzTerm(s, data)
		s.Assert(constraint)
		res := s.Solve()

		widths := map[string]int{"a": 2, "b": 3, "c": 1}
		switch res {
		case Sat:
			m := s.Model()
			env := map[string]uint64{}
			for name := range widths {
				v, ok := m[name].Uint64()
				if !ok {
					t.Fatalf("model value for %s not fully defined", name)
				}
				env[name] = v
			}
			if evalTerm(t, constraint, env) != 1 {
				t.Fatalf("sat model does not satisfy %s: env=%v", constraint, env)
			}
		case Unsat:
			for a := uint64(0); a < 4; a++ {
				for b := uint64(0); b < 8; b++ {
					for c := uint64(0); c < 2; c++ {
						env := map[string]uint64{"a": a, "b": b, "c": c}
						if evalTerm(t, constraint, env) == 1 {
							t.Fatalf("unsat but %v satisfies %s", env, constraint)
						}
					}
				}
			}
		default:
			t.Fatalf("unexpected solve result %v", res)
		}
	})
}

// buildFuzzTerm interprets the fuzz input as a stack-machine program
// over small bit-vector terms and returns a 1-bit constraint. Every
// term kind is reachable; widths are coerced (ZExt truncates or
// extends) so constructor panics are impossible by construction.
func buildFuzzTerm(s *Solver, data []byte) *Term {
	stack := []*Term{
		s.Var("a", 2), s.Var("b", 3), s.Var("c", 1),
		ConstUint(2, 1), ConstUint(3, 5),
	}
	pick := func(sel byte) *Term { return stack[int(sel)%len(stack)] }
	push := func(t *Term) {
		const maxStack = 32
		if len(stack) < maxStack {
			stack = append(stack, t)
			return
		}
		stack[(len(stack)-1+t.W)%maxStack] = t
	}
	const maxOps = 24
	for i := 0; i+3 < len(data) && i/4 < maxOps; i += 4 {
		op, s1, s2, s3 := data[i], data[i+1], data[i+2], data[i+3]
		x := pick(s1)
		y := ZExt(pick(s2), x.W)
		switch op % 20 {
		case 0:
			push(Not(x))
		case 1:
			push(And(x, y))
		case 2:
			push(Or(x, y))
		case 3:
			push(Xor(x, y))
		case 4:
			push(Add(x, y))
		case 5:
			push(Sub(x, y))
		case 6:
			push(Mul(x, y))
		case 7:
			push(Neg(x))
		case 8:
			push(Eq(x, y))
		case 9:
			push(Ult(x, y))
		case 10:
			push(Ule(x, y))
		case 11:
			push(Ite(ZExt(pick(s3), 1), x, y))
		case 12:
			lo := int(s3) % x.W
			hi := lo + int(s3>>4)%(x.W-lo)
			push(Extract(x, hi, lo))
		case 13:
			if x.W+y.W <= 8 {
				push(Concat(x, y))
			}
		case 14:
			push(ZExt(x, 1+int(s3)%8))
		case 15:
			push(Shl(x, y))
		case 16:
			push(Shr(x, y))
		case 17:
			push(RedAnd(x))
		case 18:
			push(RedOr(x))
		case 19:
			push(RedXor(x))
		}
	}
	return RedOr(stack[len(stack)-1])
}

// evalTerm is an independent concrete evaluator over uint64 — the
// reference semantics the solver is checked against. Results are
// masked to the term width.
func evalTerm(t *testing.T, term *Term, env map[string]uint64) uint64 {
	t.Helper()
	mask := func(w int) uint64 {
		if w >= 64 {
			return ^uint64(0)
		}
		return (uint64(1) << uint(w)) - 1
	}
	var ev func(*Term) uint64
	ev = func(x *Term) uint64 {
		switch x.Kind {
		case KVar:
			v, ok := env[x.Name]
			if !ok {
				t.Fatalf("unbound variable %s", x.Name)
			}
			return v & mask(x.W)
		case KConst:
			v, ok := x.Val.Uint64()
			if !ok {
				t.Fatalf("constant with undefined bits: %s", x.Val)
			}
			return v
		case KNot:
			return ^ev(x.Args[0]) & mask(x.W)
		case KAnd:
			return ev(x.Args[0]) & ev(x.Args[1])
		case KOr:
			return ev(x.Args[0]) | ev(x.Args[1])
		case KXor:
			return ev(x.Args[0]) ^ ev(x.Args[1])
		case KAdd:
			return (ev(x.Args[0]) + ev(x.Args[1])) & mask(x.W)
		case KSub:
			return (ev(x.Args[0]) - ev(x.Args[1])) & mask(x.W)
		case KMul:
			return (ev(x.Args[0]) * ev(x.Args[1])) & mask(x.W)
		case KNeg:
			return (-ev(x.Args[0])) & mask(x.W)
		case KEq:
			if ev(x.Args[0]) == ev(x.Args[1]) {
				return 1
			}
			return 0
		case KUlt:
			if ev(x.Args[0]) < ev(x.Args[1]) {
				return 1
			}
			return 0
		case KUle:
			if ev(x.Args[0]) <= ev(x.Args[1]) {
				return 1
			}
			return 0
		case KIte:
			if ev(x.Args[0]) != 0 {
				return ev(x.Args[1])
			}
			return ev(x.Args[2])
		case KExtract:
			return (ev(x.Args[0]) >> uint(x.Lo)) & mask(x.Hi-x.Lo+1)
		case KConcat:
			acc := uint64(0)
			for _, a := range x.Args { // first argument = MSBs
				acc = acc<<uint(a.W) | ev(a)
			}
			return acc
		case KZext:
			return ev(x.Args[0]) & mask(x.W)
		case KShl:
			sh := ev(x.Args[1])
			if sh >= uint64(x.W) {
				return 0
			}
			return (ev(x.Args[0]) << uint(sh)) & mask(x.W)
		case KShr:
			sh := ev(x.Args[1])
			if sh >= uint64(x.W) {
				return 0
			}
			return ev(x.Args[0]) >> uint(sh)
		case KRedAnd:
			if ev(x.Args[0]) == mask(x.Args[0].W) {
				return 1
			}
			return 0
		case KRedOr:
			if ev(x.Args[0]) != 0 {
				return 1
			}
			return 0
		case KRedXor:
			return uint64(bits.OnesCount64(ev(x.Args[0]))) & 1
		default:
			t.Fatalf("evaluator missing kind %d", x.Kind)
			return 0
		}
	}
	return ev(term)
}

package smt

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
)

// blaster Tseitin-encodes bit-vector terms into the SAT solver.
type blaster struct {
	sat   *SAT
	vars  map[string][]Lit // declared variable bits, LSB first
	varW  map[string]int
	cache map[*Term][]Lit
	tLit  Lit // literal forced true
	fLit  Lit
	// gate caches to avoid duplicate encodings
	andCache map[[2]Lit]Lit
	xorCache map[[2]Lit]Lit
}

func newBlaster(s *SAT) *blaster {
	b := &blaster{
		sat:      s,
		vars:     map[string][]Lit{},
		varW:     map[string]int{},
		cache:    map[*Term][]Lit{},
		andCache: map[[2]Lit]Lit{},
		xorCache: map[[2]Lit]Lit{},
	}
	v := s.NewVar()
	b.tLit = MkLit(v, false)
	b.fLit = b.tLit.Not()
	s.AddClause(b.tLit)
	return b
}

// declare registers a variable's bits, allocating them on first use.
func (b *blaster) declare(name string, width int) []Lit {
	if lits, ok := b.vars[name]; ok {
		if b.varW[name] != width {
			panic(fmt.Sprintf("smt: variable %q redeclared with width %d (was %d)", name, width, b.varW[name]))
		}
		return lits
	}
	lits := make([]Lit, width)
	for i := range lits {
		lits[i] = MkLit(b.sat.NewVar(), false)
	}
	b.vars[name] = lits
	b.varW[name] = width
	return lits
}

func (b *blaster) constBit(v bool) Lit {
	if v {
		return b.tLit
	}
	return b.fLit
}

func (b *blaster) isConst(l Lit) (bool, bool) {
	switch l {
	case b.tLit:
		return true, true
	case b.fLit:
		return false, true
	}
	return false, false
}

// and returns a literal equivalent to a AND b.
func (b *blaster) and(a, c Lit) Lit {
	if v, ok := b.isConst(a); ok {
		if v {
			return c
		}
		return b.fLit
	}
	if v, ok := b.isConst(c); ok {
		if v {
			return a
		}
		return b.fLit
	}
	if a == c {
		return a
	}
	if a == c.Not() {
		return b.fLit
	}
	key := [2]Lit{min(a, c), max(a, c)}
	if o, ok := b.andCache[key]; ok {
		return o
	}
	o := MkLit(b.sat.NewVar(), false)
	b.sat.AddClause(o.Not(), a)
	b.sat.AddClause(o.Not(), c)
	b.sat.AddClause(o, a.Not(), c.Not())
	b.andCache[key] = o
	return o
}

func (b *blaster) or(a, c Lit) Lit { return b.and(a.Not(), c.Not()).Not() }

// xor returns a literal equivalent to a XOR b.
func (b *blaster) xor(a, c Lit) Lit {
	if v, ok := b.isConst(a); ok {
		if v {
			return c.Not()
		}
		return c
	}
	if v, ok := b.isConst(c); ok {
		if v {
			return a.Not()
		}
		return a
	}
	if a == c {
		return b.fLit
	}
	if a == c.Not() {
		return b.tLit
	}
	key := [2]Lit{min(a, c), max(a, c)}
	if o, ok := b.xorCache[key]; ok {
		return o
	}
	o := MkLit(b.sat.NewVar(), false)
	b.sat.AddClause(o.Not(), a, c)
	b.sat.AddClause(o.Not(), a.Not(), c.Not())
	b.sat.AddClause(o, a.Not(), c)
	b.sat.AddClause(o, a, c.Not())
	b.xorCache[key] = o
	return o
}

// mux returns s ? t : f.
func (b *blaster) mux(s, t, f Lit) Lit {
	if v, ok := b.isConst(s); ok {
		if v {
			return t
		}
		return f
	}
	if t == f {
		return t
	}
	// o = (s&t) | (~s&f)
	return b.or(b.and(s, t), b.and(s.Not(), f))
}

// fullAdder returns (sum, carry) of a+b+cin.
func (b *blaster) fullAdder(a, c, cin Lit) (Lit, Lit) {
	axc := b.xor(a, c)
	sum := b.xor(axc, cin)
	carry := b.or(b.and(a, c), b.and(cin, axc))
	return sum, carry
}

// bvBits returns the LSB-first literal vector of a term, memoized.
func (b *blaster) bvBits(t *Term) []Lit {
	if lits, ok := b.cache[t]; ok {
		return lits
	}
	lits := b.blastTerm(t)
	if len(lits) != t.W {
		panic(fmt.Sprintf("smt: internal width error blasting %s: %d != %d", t, len(lits), t.W))
	}
	b.cache[t] = lits
	return lits
}

func (b *blaster) blastTerm(t *Term) []Lit {
	switch t.Kind {
	case KVar:
		return b.declare(t.Name, t.W)
	case KConst:
		lits := make([]Lit, t.W)
		for i := range lits {
			lits[i] = b.constBit(t.Val.Bit(i) == logic.L1)
		}
		return lits
	case KNot:
		x := b.bvBits(t.Args[0])
		out := make([]Lit, len(x))
		for i, l := range x {
			out[i] = l.Not()
		}
		return out
	case KAnd, KOr, KXor:
		x := b.bvBits(t.Args[0])
		y := b.bvBits(t.Args[1])
		out := make([]Lit, len(x))
		for i := range x {
			switch t.Kind {
			case KAnd:
				out[i] = b.and(x[i], y[i])
			case KOr:
				out[i] = b.or(x[i], y[i])
			default:
				out[i] = b.xor(x[i], y[i])
			}
		}
		return out
	case KAdd:
		return b.adder(b.bvBits(t.Args[0]), b.bvBits(t.Args[1]), b.fLit)
	case KSub:
		y := b.bvBits(t.Args[1])
		ny := make([]Lit, len(y))
		for i, l := range y {
			ny[i] = l.Not()
		}
		return b.adder(b.bvBits(t.Args[0]), ny, b.tLit)
	case KNeg:
		x := b.bvBits(t.Args[0])
		nx := make([]Lit, len(x))
		for i, l := range x {
			nx[i] = l.Not()
		}
		zero := make([]Lit, len(x))
		for i := range zero {
			zero[i] = b.fLit
		}
		return b.adder(zero, nx, b.tLit)
	case KMul:
		x := b.bvBits(t.Args[0])
		y := b.bvBits(t.Args[1])
		w := t.W
		acc := make([]Lit, w)
		for i := range acc {
			acc[i] = b.fLit
		}
		for i := 0; i < w; i++ {
			// partial product: (x << i) & y[i]
			pp := make([]Lit, w)
			for j := range pp {
				if j < i {
					pp[j] = b.fLit
				} else {
					pp[j] = b.and(x[j-i], y[i])
				}
			}
			acc = b.adder(acc, pp, b.fLit)
		}
		return acc
	case KEq:
		x := b.bvBits(t.Args[0])
		y := b.bvBits(t.Args[1])
		acc := b.tLit
		for i := range x {
			acc = b.and(acc, b.xor(x[i], y[i]).Not())
		}
		return []Lit{acc}
	case KUlt:
		return []Lit{b.ult(b.bvBits(t.Args[0]), b.bvBits(t.Args[1]))}
	case KUle:
		return []Lit{b.ult(b.bvBits(t.Args[1]), b.bvBits(t.Args[0])).Not()}
	case KIte:
		c := b.bvBits(t.Args[0])[0]
		x := b.bvBits(t.Args[1])
		y := b.bvBits(t.Args[2])
		out := make([]Lit, len(x))
		for i := range x {
			out[i] = b.mux(c, x[i], y[i])
		}
		return out
	case KExtract:
		x := b.bvBits(t.Args[0])
		return x[t.Lo : t.Hi+1]
	case KConcat:
		var out []Lit
		for i := len(t.Args) - 1; i >= 0; i-- { // last arg = LSBs
			out = append(out, b.bvBits(t.Args[i])...)
		}
		return out
	case KZext:
		x := b.bvBits(t.Args[0])
		out := make([]Lit, t.W)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = b.fLit
			}
		}
		return out
	case KShl, KShr:
		return b.shifter(t)
	case KRedAnd:
		x := b.bvBits(t.Args[0])
		acc := b.tLit
		for _, l := range x {
			acc = b.and(acc, l)
		}
		return []Lit{acc}
	case KRedOr:
		x := b.bvBits(t.Args[0])
		acc := b.fLit
		for _, l := range x {
			acc = b.or(acc, l)
		}
		return []Lit{acc}
	case KRedXor:
		x := b.bvBits(t.Args[0])
		acc := b.fLit
		for _, l := range x {
			acc = b.xor(acc, l)
		}
		return []Lit{acc}
	}
	panic(fmt.Sprintf("smt: cannot blast term kind %d", t.Kind))
}

// adder is a ripple-carry adder over LSB-first literal vectors.
func (b *blaster) adder(x, y []Lit, cin Lit) []Lit {
	out := make([]Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

// ult encodes unsigned x < y from the LSB up.
func (b *blaster) ult(x, y []Lit) Lit {
	lt := b.fLit
	for i := 0; i < len(x); i++ {
		eqi := b.xor(x[i], y[i]).Not()
		lti := b.and(x[i].Not(), y[i])
		lt = b.or(lti, b.and(eqi, lt))
	}
	return lt
}

// shifter builds a barrel shifter for dynamic shift terms.
func (b *blaster) shifter(t *Term) []Lit {
	x := b.bvBits(t.Args[0])
	amt := b.bvBits(t.Args[1])
	w := len(x)
	stages := bits.Len(uint(w - 1))
	if stages == 0 {
		stages = 1
	}
	cur := make([]Lit, w)
	copy(cur, x)
	for k := 0; k < stages && k < len(amt); k++ {
		shift := 1 << k
		next := make([]Lit, w)
		for i := 0; i < w; i++ {
			var shifted Lit
			if t.Kind == KShl {
				if i-shift >= 0 {
					shifted = cur[i-shift]
				} else {
					shifted = b.fLit
				}
			} else {
				if i+shift < w {
					shifted = cur[i+shift]
				} else {
					shifted = b.fLit
				}
			}
			next[i] = b.mux(amt[k], shifted, cur[i])
		}
		cur = next
	}
	// Any set amount bit beyond the stage range zeroes the result.
	over := b.fLit
	for k := stages; k < len(amt); k++ {
		over = b.or(over, amt[k])
	}
	if over != b.fLit {
		out := make([]Lit, w)
		for i := range cur {
			out[i] = b.mux(over, b.fLit, cur[i])
		}
		return out
	}
	return cur
}

// assertTrue forces a 1-bit term to be true.
func (b *blaster) assertTrue(t *Term) {
	if t.W != 1 {
		panic("smt: assertion must be 1 bit wide")
	}
	l := b.bvBits(t)[0]
	b.sat.AddClause(l)
}

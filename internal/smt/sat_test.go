package smt

import (
	"math/rand"
	"testing"
)

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.Neg() {
		t.Errorf("lit = %v", l)
	}
	n := l.Not()
	if n.Var() != 5 || n.Neg() {
		t.Errorf("not = %v", n)
	}
	if n.Not() != l {
		t.Error("double negation")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestSolveWithAssumptions(t *testing.T) {
	s := NewSAT()
	a := s.NewVar()
	b := s.NewVar()
	// a -> b
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if !s.Solve(MkLit(a, false)) {
		t.Fatal("assuming a should be sat")
	}
	if !s.ValueOf(b) {
		t.Error("b must follow from a")
	}
	// Assume a and !b: contradiction with a->b.
	if s.Solve(MkLit(a, false), MkLit(b, true)) {
		t.Error("a && !b should be unsat")
	}
	// The solver is reusable after assumption failure.
	if !s.Solve(MkLit(a, true)) {
		t.Error("assuming !a should be sat")
	}
}

func TestStatsAdvance(t *testing.T) {
	s := NewSAT()
	n := 14
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 60; c++ {
		s.AddClause(
			MkLit(vars[rng.Intn(n)], rng.Intn(2) == 0),
			MkLit(vars[rng.Intn(n)], rng.Intn(2) == 0),
			MkLit(vars[rng.Intn(n)], rng.Intn(2) == 0))
	}
	s.Solve()
	_, decisions, props := s.Stats()
	if decisions == 0 && props == 0 {
		t.Error("no work recorded")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := NewSAT()
	a := s.NewVar()
	// Tautology: a || !a is dropped, formula stays satisfiable.
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Error("tautology must not make the formula unsat")
	}
	// Duplicate literals collapse: (a || a) == (a).
	if !s.AddClause(MkLit(a, false), MkLit(a, false)) {
		t.Error("duplicate literal clause rejected")
	}
	if !s.Solve() || !s.ValueOf(a) {
		t.Error("a should be forced true")
	}
}

func TestAddClauseAfterSolve(t *testing.T) {
	// Incremental use: solve, block, solve again.
	s := NewSAT()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	count := 0
	for s.Solve() {
		count++
		if count > 4 {
			t.Fatal("too many models")
		}
		// Block the current assignment of (a, b).
		s.AddClause(MkLit(a, s.ValueOf(a)), MkLit(b, s.ValueOf(b)))
	}
	if count != 3 { // (1,0), (0,1), (1,1)
		t.Errorf("models = %d, want 3", count)
	}
}

func TestUnsatSticky(t *testing.T) {
	s := NewSAT()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if s.Solve() {
		t.Fatal("should be unsat")
	}
	// Still unsat no matter what is added afterwards.
	b := s.NewVar()
	s.AddClause(MkLit(b, false))
	if s.Solve() {
		t.Error("unsat must be sticky")
	}
}

func TestRandomPolaritySAT(t *testing.T) {
	// With SetRand, free variables vary across solver instances.
	seen := map[bool]bool{}
	for seed := int64(0); seed < 16; seed++ {
		s := NewSAT()
		s.SetRand(rand.New(rand.NewSource(seed)))
		a := s.NewVar()
		b := s.NewVar()
		s.AddClause(MkLit(a, false), MkLit(b, false)) // a or b
		if !s.Solve() {
			t.Fatal("sat expected")
		}
		seen[s.ValueOf(a)] = true
	}
	if len(seen) != 2 {
		t.Error("random polarity produced identical assignments")
	}
}

func TestLargerPigeonhole(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// 6 pigeons, 5 holes: stresses conflict analysis and restarts.
	s := NewSAT()
	p, h := 6, 5
	v := make([][]int, p)
	for i := range v {
		v[i] = make([]int, h)
		for j := range v[i] {
			v[i][j] = s.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		lits := make([]Lit, h)
		for j := 0; j < h; j++ {
			lits[j] = MkLit(v[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				s.AddClause(MkLit(v[i1][j], true), MkLit(v[i2][j], true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole 6/5 must be unsat")
	}
	conflicts, _, _ := s.Stats()
	if conflicts == 0 {
		t.Error("expected conflicts to be recorded")
	}
}

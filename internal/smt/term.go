package smt

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// TermKind identifies a bit-vector term node.
type TermKind int

// Term kinds.
const (
	KVar TermKind = iota
	KConst
	KNot
	KAnd
	KOr
	KXor
	KAdd
	KSub
	KMul
	KNeg
	KEq  // 1-bit result
	KUlt // 1-bit result
	KUle // 1-bit result
	KIte // args: cond(1), then, else
	KExtract
	KConcat // args left-to-right, first = MSBs
	KZext
	KShl // dynamic shift left
	KShr // dynamic logical shift right
	KRedAnd
	KRedOr
	KRedXor
)

// Term is an immutable bit-vector expression. One-bit terms double as
// booleans (1 = true).
type Term struct {
	Kind   TermKind
	W      int
	Name   string   // KVar
	Val    logic.BV // KConst, fully defined
	Args   []*Term
	Hi, Lo int // KExtract
}

// Width returns the term's bit width.
func (t *Term) Width() int { return t.W }

// String renders the term for diagnostics.
func (t *Term) String() string {
	switch t.Kind {
	case KVar:
		return t.Name
	case KConst:
		return t.Val.String()
	case KExtract:
		return fmt.Sprintf("%s[%d:%d]", t.Args[0], t.Hi, t.Lo)
	}
	names := map[TermKind]string{
		KNot: "not", KAnd: "and", KOr: "or", KXor: "xor", KAdd: "add",
		KSub: "sub", KMul: "mul", KNeg: "neg", KEq: "=", KUlt: "ult",
		KUle: "ule", KIte: "ite", KConcat: "concat", KZext: "zext",
		KShl: "shl", KShr: "shr", KRedAnd: "redand", KRedOr: "redor",
		KRedXor: "redxor",
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("(%s %s)", names[t.Kind], strings.Join(parts, " "))
}

// Var returns a bit-vector variable term.
func Var(name string, width int) *Term {
	if width <= 0 {
		panic("smt: variable width must be positive")
	}
	return &Term{Kind: KVar, W: width, Name: name}
}

// Const wraps a fully defined bit-vector constant.
func Const(v logic.BV) *Term {
	if !v.IsFullyDefined() {
		panic("smt: constants must be fully defined")
	}
	return &Term{Kind: KConst, W: v.Width(), Val: v}
}

// ConstUint builds a width-bit constant from a uint64.
func ConstUint(width int, v uint64) *Term {
	return Const(logic.FromUint64(width, v))
}

// True is the 1-bit constant 1.
func True() *Term { return ConstUint(1, 1) }

// False is the 1-bit constant 0.
func False() *Term { return ConstUint(1, 0) }

func checkW(x, y *Term) {
	if x.W != y.W {
		panic(fmt.Sprintf("smt: width mismatch %d vs %d", x.W, y.W))
	}
}

func bothConst(x, y *Term) bool { return x.Kind == KConst && y.Kind == KConst }

// Not is bitwise negation.
func Not(x *Term) *Term {
	if x.Kind == KConst {
		return Const(x.Val.Not())
	}
	if x.Kind == KNot {
		return x.Args[0]
	}
	return &Term{Kind: KNot, W: x.W, Args: []*Term{x}}
}

// And is bitwise conjunction.
func And(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		return Const(x.Val.And(y.Val))
	}
	if x.Kind == KConst && x.Val.IsZero() {
		return x
	}
	if y.Kind == KConst && y.Val.IsZero() {
		return y
	}
	return &Term{Kind: KAnd, W: x.W, Args: []*Term{x, y}}
}

// Or is bitwise disjunction.
func Or(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		return Const(x.Val.Or(y.Val))
	}
	if x.Kind == KConst && x.Val.IsZero() {
		return y
	}
	if y.Kind == KConst && y.Val.IsZero() {
		return x
	}
	return &Term{Kind: KOr, W: x.W, Args: []*Term{x, y}}
}

// Xor is bitwise exclusive or.
func Xor(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		return Const(x.Val.Xor(y.Val))
	}
	return &Term{Kind: KXor, W: x.W, Args: []*Term{x, y}}
}

// Add is modular addition.
func Add(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		return Const(x.Val.Add(y.Val))
	}
	return &Term{Kind: KAdd, W: x.W, Args: []*Term{x, y}}
}

// Sub is modular subtraction.
func Sub(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		return Const(x.Val.Sub(y.Val))
	}
	return &Term{Kind: KSub, W: x.W, Args: []*Term{x, y}}
}

// Mul is modular multiplication.
func Mul(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		return Const(x.Val.Mul(y.Val))
	}
	return &Term{Kind: KMul, W: x.W, Args: []*Term{x, y}}
}

// Neg is two's complement negation.
func Neg(x *Term) *Term {
	if x.Kind == KConst {
		return Const(x.Val.Neg())
	}
	return &Term{Kind: KNeg, W: x.W, Args: []*Term{x}}
}

// Eq is bit-vector equality (1-bit result).
func Eq(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		if x.Val.Eq4(y.Val) {
			return True()
		}
		return False()
	}
	return &Term{Kind: KEq, W: 1, Args: []*Term{x, y}}
}

// Ne is bit-vector disequality.
func Ne(x, y *Term) *Term { return Not(Eq(x, y)) }

// Ult is unsigned less-than (1-bit result).
func Ult(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		if t := x.Val.Lt(y.Val); t.Truthy() == logic.L1 {
			return True()
		}
		return False()
	}
	return &Term{Kind: KUlt, W: 1, Args: []*Term{x, y}}
}

// Ule is unsigned less-or-equal.
func Ule(x, y *Term) *Term {
	checkW(x, y)
	if bothConst(x, y) {
		if t := x.Val.Le(y.Val); t.Truthy() == logic.L1 {
			return True()
		}
		return False()
	}
	return &Term{Kind: KUle, W: 1, Args: []*Term{x, y}}
}

// Ugt is unsigned greater-than.
func Ugt(x, y *Term) *Term { return Ult(y, x) }

// Uge is unsigned greater-or-equal.
func Uge(x, y *Term) *Term { return Ule(y, x) }

// Ite is if-then-else; cond must be 1 bit wide.
func Ite(cond, t, f *Term) *Term {
	if cond.W != 1 {
		panic("smt: ite condition must be 1 bit")
	}
	checkW(t, f)
	if cond.Kind == KConst {
		if cond.Val.IsZero() {
			return f
		}
		return t
	}
	return &Term{Kind: KIte, W: t.W, Args: []*Term{cond, t, f}}
}

// Extract selects bits [hi:lo].
func Extract(x *Term, hi, lo int) *Term {
	if hi < lo || hi >= x.W || lo < 0 {
		panic(fmt.Sprintf("smt: invalid extract [%d:%d] of width %d", hi, lo, x.W))
	}
	if hi == x.W-1 && lo == 0 {
		return x
	}
	if x.Kind == KConst {
		return Const(x.Val.Extract(hi, lo))
	}
	return &Term{Kind: KExtract, W: hi - lo + 1, Args: []*Term{x}, Hi: hi, Lo: lo}
}

// Concat joins terms, first argument in the MSBs.
func Concat(parts ...*Term) *Term {
	if len(parts) == 0 {
		panic("smt: empty concat")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	w := 0
	for _, p := range parts {
		w += p.W
	}
	return &Term{Kind: KConcat, W: w, Args: parts}
}

// ZExt zero-extends (or truncates) to width w.
func ZExt(x *Term, w int) *Term {
	switch {
	case w == x.W:
		return x
	case w < x.W:
		return Extract(x, w-1, 0)
	}
	if x.Kind == KConst {
		return Const(x.Val.Resize(w))
	}
	return &Term{Kind: KZext, W: w, Args: []*Term{x}}
}

// Shl is a dynamic left shift (shift amount is a term).
func Shl(x, amount *Term) *Term {
	if bothConst(x, amount) {
		return Const(x.Val.Shl(amount.Val))
	}
	return &Term{Kind: KShl, W: x.W, Args: []*Term{x, amount}}
}

// Shr is a dynamic logical right shift.
func Shr(x, amount *Term) *Term {
	if bothConst(x, amount) {
		return Const(x.Val.Shr(amount.Val))
	}
	return &Term{Kind: KShr, W: x.W, Args: []*Term{x, amount}}
}

// RedAnd is the 1-bit AND reduction.
func RedAnd(x *Term) *Term {
	if x.Kind == KConst {
		return Const(x.Val.ReduceAnd())
	}
	return &Term{Kind: KRedAnd, W: 1, Args: []*Term{x}}
}

// RedOr is the 1-bit OR reduction.
func RedOr(x *Term) *Term {
	if x.Kind == KConst {
		return Const(x.Val.ReduceOr())
	}
	return &Term{Kind: KRedOr, W: 1, Args: []*Term{x}}
}

// RedXor is the 1-bit XOR reduction (parity).
func RedXor(x *Term) *Term {
	if x.Kind == KConst {
		return Const(x.Val.ReduceXor())
	}
	return &Term{Kind: KRedXor, W: 1, Args: []*Term{x}}
}

// BoolAnd conjoins 1-bit terms.
func BoolAnd(xs ...*Term) *Term {
	out := True()
	for _, x := range xs {
		out = And(out, x)
	}
	return out
}

// BoolOr disjoins 1-bit terms.
func BoolOr(xs ...*Term) *Term {
	out := False()
	for _, x := range xs {
		out = Or(out, x)
	}
	return out
}

// Implies is boolean implication over 1-bit terms.
func Implies(a, b *Term) *Term { return Or(Not(a), b) }

// Vars returns the distinct variable names referenced by the term.
func (t *Term) Vars() []string {
	set := map[string]bool{}
	var walk func(*Term)
	walk = func(x *Term) {
		if x.Kind == KVar {
			set[x.Name] = true
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(t)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

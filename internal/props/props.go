// Package props implements the SVA-style security-property engine of
// §4.9: properties are boolean expressions over design signals with
// temporal helpers ($past, $stable, $isunknown) and implication (|->),
// sampled every clock cycle by a checker bound to the simulator (the
// UVM monitor role). A property fires a Violation when it evaluates to
// a known 0; unknown (X) results never fire, matching assertion
// semantics in four-state simulation.
package props

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/sim"
)

// Ctx supplies signal values to property evaluation.
type Ctx interface {
	// Val returns the current sampled value of a signal.
	Val(name string) logic.BV
	// PastVal returns the value n cycles ago (X before enough history).
	PastVal(name string, n int) logic.BV
	// Cycle is the current cycle number.
	Cycle() uint64
}

// Expr is a property expression node.
type Expr interface {
	Eval(c Ctx) logic.BV
	// Signals appends the signal names the expression reads.
	Signals(set map[string]int)
	String() string
}

// ---- leaves ----

type sigExpr struct{ name string }

// Sig references a signal by hierarchical name.
func Sig(name string) Expr { return sigExpr{name} }

func (e sigExpr) Eval(c Ctx) logic.BV        { return c.Val(e.name) }
func (e sigExpr) Signals(set map[string]int) { set[e.name] = max(set[e.name], 0) }
func (e sigExpr) String() string             { return e.name }

type constExpr struct{ v logic.BV }

// Const wraps a literal value.
func Const(v logic.BV) Expr { return constExpr{v} }

// U builds a width-bit unsigned constant.
func U(width int, v uint64) Expr { return constExpr{logic.FromUint64(width, v)} }

// B builds a 1-bit constant from a bool.
func B(v bool) Expr {
	if v {
		return constExpr{logic.Ones(1)}
	}
	return constExpr{logic.Zero(1)}
}

func (e constExpr) Eval(Ctx) logic.BV      { return e.v }
func (e constExpr) Signals(map[string]int) {}
func (e constExpr) String() string         { return e.v.String() }

// ---- temporal ----

type pastExpr struct {
	name string
	n    int
}

// Past is $past(signal, n): the signal's value n cycles earlier.
func Past(name string, n int) Expr {
	if n <= 0 {
		n = 1
	}
	return pastExpr{name, n}
}

func (e pastExpr) Eval(c Ctx) logic.BV { return c.PastVal(e.name, e.n) }
func (e pastExpr) Signals(set map[string]int) {
	set[e.name] = max(set[e.name], e.n)
}
func (e pastExpr) String() string { return fmt.Sprintf("$past(%s,%d)", e.name, e.n) }

type stableExpr struct{ name string }

// Stable is $stable(signal): current value case-equals the previous one.
func Stable(name string) Expr { return stableExpr{name} }

func (e stableExpr) Eval(c Ctx) logic.BV {
	if c.Val(e.name).Eq4(c.PastVal(e.name, 1)) {
		return logic.Ones(1)
	}
	return logic.Zero(1)
}
func (e stableExpr) Signals(set map[string]int) { set[e.name] = max(set[e.name], 1) }
func (e stableExpr) String() string             { return fmt.Sprintf("$stable(%s)", e.name) }

type isUnknownExpr struct{ x Expr }

// IsUnknown is $isunknown(e): 1 when any bit is X or Z.
func IsUnknown(x Expr) Expr { return isUnknownExpr{x} }

func (e isUnknownExpr) Eval(c Ctx) logic.BV {
	if e.x.Eval(c).HasUnknown() {
		return logic.Ones(1)
	}
	return logic.Zero(1)
}
func (e isUnknownExpr) Signals(set map[string]int) { e.x.Signals(set) }
func (e isUnknownExpr) String() string             { return fmt.Sprintf("$isunknown(%s)", e.x) }

// ---- operators ----

type binExpr struct {
	op   string
	x, y Expr
}

func bin(op string, x, y Expr) Expr { return binExpr{op, x, y} }

// Eq is x == y (widths are equalized by zero extension).
func Eq(x, y Expr) Expr { return bin("==", x, y) }

// Ne is x != y.
func Ne(x, y Expr) Expr { return bin("!=", x, y) }

// Lt is unsigned x < y.
func Lt(x, y Expr) Expr { return bin("<", x, y) }

// Le is unsigned x <= y.
func Le(x, y Expr) Expr { return bin("<=", x, y) }

// And is logical conjunction.
func And(x, y Expr) Expr { return bin("&&", x, y) }

// Or is logical disjunction.
func Or(x, y Expr) Expr { return bin("||", x, y) }

// BAnd is bitwise conjunction.
func BAnd(x, y Expr) Expr { return bin("&", x, y) }

// BOr is bitwise disjunction.
func BOr(x, y Expr) Expr { return bin("|", x, y) }

// BXor is bitwise exclusive-or.
func BXor(x, y Expr) Expr { return bin("^", x, y) }

// Add is modular addition.
func Add(x, y Expr) Expr { return bin("+", x, y) }

// Sub is modular subtraction.
func Sub(x, y Expr) Expr { return bin("-", x, y) }

func equalize(a, b logic.BV) (logic.BV, logic.BV) {
	w := max(a.Width(), b.Width())
	return a.Resize(w), b.Resize(w)
}

func (e binExpr) Eval(c Ctx) logic.BV {
	a, b := e.x.Eval(c), e.y.Eval(c)
	switch e.op {
	case "&&":
		return a.LogicalAnd(b)
	case "||":
		return a.LogicalOr(b)
	}
	a, b = equalize(a, b)
	switch e.op {
	case "==":
		return a.Eq(b)
	case "!=":
		return a.Neq(b)
	case "<":
		return a.Lt(b)
	case "<=":
		return a.Le(b)
	case "&":
		return a.And(b)
	case "|":
		return a.Or(b)
	case "^":
		return a.Xor(b)
	case "+":
		return a.Add(b)
	case "-":
		return a.Sub(b)
	}
	panic("props: unknown operator " + e.op)
}
func (e binExpr) Signals(set map[string]int) {
	e.x.Signals(set)
	e.y.Signals(set)
}
func (e binExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.x, e.op, e.y) }

type notExpr struct{ x Expr }

// Not is logical negation.
func Not(x Expr) Expr { return notExpr{x} }

func (e notExpr) Eval(c Ctx) logic.BV        { return e.x.Eval(c).LogicalNot() }
func (e notExpr) Signals(set map[string]int) { e.x.Signals(set) }
func (e notExpr) String() string             { return fmt.Sprintf("!%s", e.x) }

type redOrExpr struct{ x Expr }

// RedOr is the |x reduction.
func RedOr(x Expr) Expr { return redOrExpr{x} }

func (e redOrExpr) Eval(c Ctx) logic.BV        { return e.x.Eval(c).ReduceOr() }
func (e redOrExpr) Signals(set map[string]int) { e.x.Signals(set) }
func (e redOrExpr) String() string             { return fmt.Sprintf("(|%s)", e.x) }

type sliceExpr struct {
	x      Expr
	hi, lo int
}

// Slice selects bits [hi:lo] of an expression.
func Slice(x Expr, hi, lo int) Expr { return sliceExpr{x, hi, lo} }

// Index selects bit [i].
func Index(x Expr, i int) Expr { return sliceExpr{x, i, i} }

func (e sliceExpr) Eval(c Ctx) logic.BV        { return e.x.Eval(c).Extract(e.hi, e.lo) }
func (e sliceExpr) Signals(set map[string]int) { e.x.Signals(set) }
func (e sliceExpr) String() string             { return fmt.Sprintf("%s[%d:%d]", e.x, e.hi, e.lo) }

type concatExpr struct{ parts []Expr }

// Concat joins expressions, first part in the MSBs (Verilog {a, b}).
func Concat(parts ...Expr) Expr { return concatExpr{parts} }

func (e concatExpr) Eval(c Ctx) logic.BV {
	out := e.parts[0].Eval(c)
	for _, p := range e.parts[1:] {
		out = out.Concat(p.Eval(c))
	}
	return out
}
func (e concatExpr) Signals(set map[string]int) {
	for _, p := range e.parts {
		p.Signals(set)
	}
}
func (e concatExpr) String() string {
	s := "{"
	for i, p := range e.parts {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + "}"
}

type impliesExpr struct{ a, c Expr }

// Implies is the overlapping implication a |-> c: holds unless a is a
// known 1 and c is a known 0.
func Implies(a, c Expr) Expr { return impliesExpr{a, c} }

func (e impliesExpr) Eval(c Ctx) logic.BV {
	av := e.a.Eval(c).Truthy()
	if av != logic.L1 {
		return logic.Ones(1) // vacuous (or unknown antecedent)
	}
	cv := e.c.Eval(c).Truthy()
	switch cv {
	case logic.L0:
		return logic.Zero(1)
	case logic.L1:
		return logic.Ones(1)
	default:
		return logic.X(1)
	}
}
func (e impliesExpr) Signals(set map[string]int) {
	e.a.Signals(set)
	e.c.Signals(set)
}
func (e impliesExpr) String() string { return fmt.Sprintf("(%s |-> %s)", e.a, e.c) }

// IsInside is $isinside: x equals any of the candidates.
func IsInside(x Expr, candidates ...Expr) Expr {
	out := B(false)
	for _, c := range candidates {
		out = Or(out, Eq(x, c))
	}
	return out
}

// ---- property and checker ----

// Property is a named invariant checked every cycle; it fails when the
// expression evaluates to a known 0 while DisableIff (if set) is not 1.
type Property struct {
	Name       string
	Expr       Expr
	DisableIff Expr   // typically reset-asserted
	CWE        string // CWE class for reporting (Table 1)
	// Tags describe how a violation of this property manifests, which
	// determines which detection models can observe it (§5.2): an
	// in-RTL assertion checker (SymbFuzz) sees every violation; a
	// golden-reference differential comparator only sees violations
	// tagged "arch-diff"; an output-monitoring harness only those
	// tagged "output-visible".
	Tags []string
}

// HasTag reports whether the property carries the given tag.
func (p *Property) HasTag(tag string) bool {
	for _, t := range p.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Violation records one failed property evaluation (§4.9: property name
// and timestamp go into the report).
type Violation struct {
	Property string
	CWE      string
	Cycle    uint64
	Detail   string
}

// Checker samples signals each cycle and evaluates properties. It keeps
// per-signal history rings deep enough for every $past reference.
type Checker struct {
	props      []*Property
	depth      map[string]int        // history depth needed per signal
	history    map[string][]logic.BV // ring buffers
	histPos    int
	histFilled int
	sim        sim.DUV
	violations []Violation
	// FirstOnly reports each property at most once.
	FirstOnly bool
	seen      map[string]bool
}

// NewChecker builds a checker over the given properties.
func NewChecker(properties ...*Property) *Checker {
	c := &Checker{
		depth:     map[string]int{},
		history:   map[string][]logic.BV{},
		FirstOnly: true,
		seen:      map[string]bool{},
	}
	for _, p := range properties {
		c.AddProperty(p)
	}
	return c
}

// AddProperty registers another property.
func (c *Checker) AddProperty(p *Property) {
	c.props = append(c.props, p)
	set := map[string]int{}
	p.Expr.Signals(set)
	if p.DisableIff != nil {
		p.DisableIff.Signals(set)
	}
	for name, d := range set {
		need := d + 1
		if need < 2 {
			need = 2
		}
		if need > c.depth[name] {
			c.depth[name] = need
		}
	}
	// All rings share the global depth so a single write cursor works.
	L := c.maxDepth()
	for name := range c.depth {
		if len(c.history[name]) != L {
			c.history[name] = make([]logic.BV, L)
		}
	}
	c.histPos = -1
	c.histFilled = 0
}

// Bind attaches the checker to a DUV backend; it samples on every
// cycle.
func (c *Checker) Bind(s sim.DUV) {
	c.sim = s
	s.OnCycle(func(sim.DUV) { c.Sample() })
}

// Val implements Ctx.
func (c *Checker) Val(name string) logic.BV {
	idx := c.sim.SignalIndex(name)
	if idx < 0 {
		return logic.X(1)
	}
	return c.sim.Get(idx)
}

// PastVal implements Ctx. PastVal(name, 1) is the value at the previous
// cycle's sample point.
func (c *Checker) PastVal(name string, n int) logic.BV {
	ring := c.history[name]
	if ring == nil || n > len(ring) || n > c.histFilled {
		return logic.X(1)
	}
	pos := ((c.histPos-(n-1))%len(ring) + len(ring)) % len(ring)
	v := ring[pos]
	if !v.Valid() {
		return logic.X(1)
	}
	return v
}

// Cycle implements Ctx.
func (c *Checker) Cycle() uint64 {
	if c.sim == nil {
		return 0
	}
	return c.sim.Cycle()
}

// Sample evaluates every property against the current state, then
// pushes current values into the history rings.
func (c *Checker) Sample() {
	for _, p := range c.props {
		if c.FirstOnly && c.seen[p.Name] {
			continue
		}
		if p.DisableIff != nil && p.DisableIff.Eval(c).Truthy() == logic.L1 {
			continue
		}
		if p.Expr.Eval(c).Truthy() == logic.L0 {
			c.violations = append(c.violations, Violation{
				Property: p.Name,
				CWE:      p.CWE,
				Cycle:    c.Cycle(),
				Detail:   p.Expr.String(),
			})
			c.seen[p.Name] = true
		}
	}
	// Push current values into the rings.
	L := c.maxDepth()
	c.histPos = (c.histPos + 1 + L) % L
	for name, ring := range c.history {
		ring[c.histPos] = c.Val(name)
	}
	if c.histFilled < L {
		c.histFilled++
	}
}

func (c *Checker) maxDepth() int {
	m := 2
	for _, d := range c.depth {
		if d > m {
			m = d
		}
	}
	return m
}

// Violations returns the recorded violations.
func (c *Checker) Violations() []Violation { return c.violations }

// Reset clears recorded violations and history (used when the fuzzer
// rolls back to a checkpoint).
func (c *Checker) Reset() {
	c.violations = nil
	c.histFilled = 0
	c.seen = map[string]bool{}
}

// ResetHistory clears only sampled history, keeping found violations.
func (c *Checker) ResetHistory() { c.histFilled = 0 }

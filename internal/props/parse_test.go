package props

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func evalStr(t *testing.T, src string, c Ctx) logic.Bit {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e.Eval(c).Truthy()
}

func TestParseExprEval(t *testing.T) {
	c := &fakeCtx{
		vals: map[string]logic.BV{
			"a":          logic.FromUint64(4, 5),
			"b":          logic.FromUint64(4, 3),
			"en":         logic.Ones(1),
			"u.deep.sig": logic.FromUint64(8, 0xA5),
			"xsig":       logic.X(4),
		},
		past: map[string][]logic.BV{
			"a": {logic.FromUint64(4, 2), logic.FromUint64(4, 9)},
		},
	}
	cases := []struct {
		src  string
		want logic.Bit
	}{
		{"a == 4'd5", logic.L1},
		{"a == 5", logic.L1}, // unsized decimal
		{"a != b", logic.L1},
		{"b < a", logic.L1},
		{"a <= 4'd5", logic.L1},
		{"a > b", logic.L1},
		{"a >= 4'd6", logic.L0},
		{"en && a == 4'd5", logic.L1},
		{"a == 4'd1 || b == 4'd3", logic.L1},
		{"!en", logic.L0},
		{"en |-> a == 4'd5", logic.L1},
		{"en |-> a == 4'd4", logic.L0},
		{"!en |-> a == 4'd4", logic.L1}, // vacuous
		{"$past(a) == 4'd2", logic.L1},
		{"$past(a, 2) == 4'd9", logic.L1},
		{"$isunknown(xsig)", logic.L1},
		{"$isunknown(a)", logic.L0},
		{"$isinside(a, 4'd1, 4'd5)", logic.L1},
		{"$isinside(a, 4'd1, 4'd2)", logic.L0},
		{"u.deep.sig == 8'hA5", logic.L1},
		{"u.deep.sig[7:4] == 4'hA", logic.L1},
		{"u.deep.sig[0]", logic.L1},
		{"(a == 4'd5) && (b == 4'd3)", logic.L1},
		{"a == 4'b0101", logic.L1},
		{"en |-> (a > b && b != 4'd0)", logic.L1},
	}
	for _, tc := range cases {
		if got := evalStr(t, tc.src, c); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	// |-> binds loosest: "a && b |-> c" is (a && b) |-> c.
	c := &fakeCtx{vals: map[string]logic.BV{
		"p": logic.Ones(1), "q": logic.Zero(1), "r": logic.Zero(1),
	}}
	if got := evalStr(t, "p && q |-> r", c); got != logic.L1 {
		t.Errorf("vacuous implication expected, got %v", got)
	}
	c.vals["q"] = logic.Ones(1)
	if got := evalStr(t, "p && q |-> r", c); got != logic.L0 {
		t.Errorf("implication must fail, got %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ src, frag string }{
		{"", "unexpected"},
		{"a ==", "unexpected"},
		{"(a", "expected \")\""},
		{"a == 0'd1", "size"},
		{"$past(3)", "signal name"},
		{"$bogus(a)", "unknown system function"},
		{"a[x]", "plain integer"},
		{"a b", "trailing"},
		{"$isinside(a)", "candidates"},
		{"a == 4'q7", "base"},
	}
	for _, b := range bad {
		_, err := ParseExpr(b.src)
		if err == nil {
			t.Errorf("%q should fail", b.src)
			continue
		}
		if !strings.Contains(err.Error(), b.frag) {
			t.Errorf("%q error %q missing %q", b.src, err, b.frag)
		}
	}
}

func TestParseProperty(t *testing.T) {
	p, err := ParseProperty("gated", "err |-> en", "!rst_ni")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "gated" || p.Expr == nil || p.DisableIff == nil {
		t.Errorf("property incomplete: %+v", p)
	}
	if _, err := ParseProperty("x", "a ==", ""); err == nil {
		t.Error("bad expression must error")
	}
	if _, err := ParseProperty("x", "a", "b =="); err == nil {
		t.Error("bad disable must error")
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustParseExpr("((")
}

func TestParsedMatchesCombinators(t *testing.T) {
	// The same property expressed both ways fires identically.
	c := &fakeCtx{vals: map[string]logic.BV{
		"rx_parity_err": logic.Ones(1), "parity_enable": logic.Zero(1),
	}}
	parsed := MustParseExpr("rx_parity_err |-> parity_enable")
	built := Implies(Sig("rx_parity_err"), Sig("parity_enable"))
	if parsed.Eval(c).Truthy() != built.Eval(c).Truthy() {
		t.Error("parsed and built expressions disagree")
	}
	if parsed.Eval(c).Truthy() != logic.L0 {
		t.Error("B11's property must fail in this state")
	}
}

func TestParseNumberWidths(t *testing.T) {
	cases := []struct {
		src   string
		width int
		val   uint64
	}{
		{"8'hFF", 8, 255},
		{"4'd9", 4, 9},
		{"3'b101", 3, 5},
		{"12'h0A5", 12, 0xA5},
		{"2'hFF", 2, 3}, // truncates
	}
	for _, tc := range cases {
		v, err := parsePropNumber(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if v.Width() != tc.width {
			t.Errorf("%s width = %d", tc.src, v.Width())
		}
		if u, _ := v.Uint64(); u != tc.val {
			t.Errorf("%s = %d, want %d", tc.src, u, tc.val)
		}
	}
	if v, err := parsePropNumber("4'bxxxx"); err != nil || !v.HasUnknown() {
		t.Errorf("x literal: %v %v", v, err)
	}
}

package props

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/logic"
)

// ParseExpr parses an SVA-flavoured property expression:
//
//	rx_parity_err |-> parity_enable
//	state_q == 4'd8 || !lc_nvm_debug_en
//	$past(state_q, 1) == 3'd3 && data_q != $past(data_in)
//	$isunknown(fsm_state_q)
//	$isinside(op, 4'd1, 4'd2)
//	key[7:4] == 4'h5
//
// Signals are hierarchical identifiers (dots allowed). Sized Verilog
// literals carry their width; unsized decimals are 64-bit and rely on
// the evaluator's width equalization. `|->` is the overlapping
// implication and has the lowest precedence.
func ParseExpr(src string) (Expr, error) {
	p := &propParser{toks: lexProp(src), src: src}
	e, err := p.parseImplication()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("props: trailing input %q in %q", p.peek().text, src)
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics on error.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseProperty builds a Property from expression sources; disableIff
// may be empty.
func ParseProperty(name, exprSrc, disableIffSrc string) (*Property, error) {
	e, err := ParseExpr(exprSrc)
	if err != nil {
		return nil, err
	}
	p := &Property{Name: name, Expr: e}
	if disableIffSrc != "" {
		d, err := ParseExpr(disableIffSrc)
		if err != nil {
			return nil, err
		}
		p.DisableIff = d
	}
	return p, nil
}

// ---- tokenizer ----

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSys // $past, $stable, ...
	tokOp  // punctuation / operators
)

type propTok struct {
	kind tokKind
	text string
	pos  int
}

func lexProp(src string) []propTok {
	var out []propTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '$':
			j := i + 1
			for j < len(src) && isWordByte(src[j]) {
				j++
			}
			out = append(out, propTok{tokSys, src[i:j], i})
			i = j
		case isWordStart(c):
			j := i
			for j < len(src) && (isWordByte(src[j]) || src[j] == '.') {
				j++
			}
			out = append(out, propTok{tokIdent, src[i:j], i})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '_') {
				j++
			}
			if j < len(src) && src[j] == '\'' {
				j++
				if j < len(src) && (src[j] == 's' || src[j] == 'S') {
					j++
				}
				if j < len(src) {
					j++ // base char
				}
				for j < len(src) && (isWordByte(src[j]) || src[j] == '?') {
					j++
				}
			}
			out = append(out, propTok{tokNumber, src[i:j], i})
			i = j
		default:
			for _, op := range []string{"|->", "==", "!=", "<=", ">=", "&&", "||"} {
				if strings.HasPrefix(src[i:], op) {
					out = append(out, propTok{tokOp, op, i})
					i += len(op)
					goto next
				}
			}
			out = append(out, propTok{tokOp, string(c), i})
			i++
		next:
		}
	}
	out = append(out, propTok{tokEOF, "", len(src)})
	return out
}

func isWordStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isWordByte(c byte) bool { return isWordStart(c) || c >= '0' && c <= '9' }

// ---- parser ----

type propParser struct {
	toks []propTok
	pos  int
	src  string
}

func (p *propParser) peek() propTok { return p.toks[p.pos] }

func (p *propParser) next() propTok {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *propParser) expectOp(op string) error {
	t := p.next()
	if t.kind != tokOp || t.text != op {
		return fmt.Errorf("props: expected %q at offset %d in %q, found %q", op, t.pos, p.src, t.text)
	}
	return nil
}

func (p *propParser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *propParser) parseImplication() (Expr, error) {
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.acceptOp("|->") {
		rhs, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		return Implies(lhs, rhs), nil
	}
	return lhs, nil
}

func (p *propParser) parseOr() (Expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("||") {
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = Or(lhs, rhs)
	}
	return lhs, nil
}

func (p *propParser) parseAnd() (Expr, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("&&") {
		rhs, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		lhs = And(lhs, rhs)
	}
	return lhs, nil
}

func (p *propParser) parseCmp() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		var mk func(a, b Expr) Expr
		switch t.text {
		case "==":
			mk = Eq
		case "!=":
			mk = Ne
		case "<":
			mk = Lt
		case "<=":
			mk = Le
		case ">":
			mk = func(a, b Expr) Expr { return Lt(b, a) }
		case ">=":
			mk = func(a, b Expr) Expr { return Le(b, a) }
		}
		if mk != nil {
			p.pos++
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return mk(lhs, rhs), nil
		}
	}
	return lhs, nil
}

func (p *propParser) parseUnary() (Expr, error) {
	if p.acceptOp("!") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	}
	if p.acceptOp("|") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return RedOr(e), nil
	}
	return p.parsePrimary()
}

func (p *propParser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokOp:
		if t.text == "(" {
			e, err := p.parseImplication()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("props: unexpected %q at offset %d in %q", t.text, t.pos, p.src)
	case tokNumber:
		v, err := parsePropNumber(t.text)
		if err != nil {
			return nil, fmt.Errorf("props: %w in %q", err, p.src)
		}
		return Const(v), nil
	case tokSys:
		return p.parseSysCall(t)
	case tokIdent:
		var e Expr = Sig(t.text)
		return p.parseSelects(e)
	}
	return nil, fmt.Errorf("props: unexpected end of expression in %q", p.src)
}

// parseSelects handles trailing [i] and [hi:lo] on an expression.
func (p *propParser) parseSelects(e Expr) (Expr, error) {
	for p.acceptOp("[") {
		hiTok := p.next()
		hi, err := strconv.Atoi(hiTok.text)
		if err != nil {
			return nil, fmt.Errorf("props: bit index %q must be a plain integer", hiTok.text)
		}
		lo := hi
		if p.acceptOp(":") {
			loTok := p.next()
			lo, err = strconv.Atoi(loTok.text)
			if err != nil {
				return nil, fmt.Errorf("props: bit index %q must be a plain integer", loTok.text)
			}
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		e = Slice(e, hi, lo)
	}
	return e, nil
}

func (p *propParser) parseSysCall(t propTok) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	switch t.text {
	case "$past":
		sig := p.next()
		if sig.kind != tokIdent {
			return nil, fmt.Errorf("props: $past needs a signal name, found %q", sig.text)
		}
		n := 1
		if p.acceptOp(",") {
			nt := p.next()
			var err error
			n, err = strconv.Atoi(nt.text)
			if err != nil {
				return nil, fmt.Errorf("props: $past depth %q invalid", nt.text)
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return Past(sig.text, n), nil
	case "$stable":
		sig := p.next()
		if sig.kind != tokIdent {
			return nil, fmt.Errorf("props: $stable needs a signal name, found %q", sig.text)
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return Stable(sig.text), nil
	case "$isunknown":
		e, err := p.parseImplication()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return IsUnknown(e), nil
	case "$isinside":
		subj, err := p.parseImplication()
		if err != nil {
			return nil, err
		}
		var cands []Expr
		for p.acceptOp(",") {
			c, err := p.parseImplication()
			if err != nil {
				return nil, err
			}
			cands = append(cands, c)
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("props: $isinside needs candidates")
		}
		return IsInside(subj, cands...), nil
	}
	return nil, fmt.Errorf("props: unknown system function %q", t.text)
}

// parsePropNumber decodes "42", "8'hFF", "4'b10xz", "3'd5".
func parsePropNumber(text string) (logic.BV, error) {
	text = strings.ReplaceAll(text, "_", "")
	ap := strings.IndexByte(text, '\'')
	if ap < 0 {
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return logic.BV{}, fmt.Errorf("invalid literal %q", text)
		}
		return logic.FromUint64(64, v), nil
	}
	width, err := strconv.Atoi(text[:ap])
	if err != nil || width <= 0 {
		return logic.BV{}, fmt.Errorf("invalid literal size in %q", text)
	}
	rest := text[ap+1:]
	if rest == "" {
		return logic.BV{}, fmt.Errorf("missing base in %q", text)
	}
	if rest[0] == 's' || rest[0] == 'S' {
		rest = rest[1:]
	}
	base, digits := rest[0], rest[1:]
	var bits string
	switch base {
	case 'b', 'B':
		bits = digits
	case 'h', 'H':
		for i := 0; i < len(digits); i++ {
			d := digits[i]
			switch {
			case d == 'x' || d == 'X':
				bits += "xxxx"
			case d == 'z' || d == 'Z':
				bits += "zzzz"
			default:
				v, err := strconv.ParseUint(string(d), 16, 8)
				if err != nil {
					return logic.BV{}, fmt.Errorf("invalid hex digit %q in %q", d, text)
				}
				bits += fmt.Sprintf("%04b", v)
			}
		}
	case 'd', 'D':
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return logic.BV{}, fmt.Errorf("invalid decimal %q", text)
		}
		return logic.FromUint64(width, v), nil
	default:
		return logic.BV{}, fmt.Errorf("unsupported base %q in %q", base, text)
	}
	v, err := logic.FromString(bits)
	if err != nil {
		return logic.BV{}, fmt.Errorf("invalid bits in %q: %w", text, err)
	}
	if v.Width() > width {
		return v.Extract(width-1, 0), nil
	}
	return v.Resize(width), nil
}

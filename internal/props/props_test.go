package props

import (
	"testing"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/logic"
	"repro/internal/sim"
)

func newSim(t *testing.T, src, top string) *sim.Simulator {
	t.Helper()
	ast, err := hdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(ast, top, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fakeCtx for pure expression tests.
type fakeCtx struct {
	vals map[string]logic.BV
	past map[string][]logic.BV
}

func (f *fakeCtx) Val(name string) logic.BV { return f.vals[name] }
func (f *fakeCtx) PastVal(name string, n int) logic.BV {
	h := f.past[name]
	if n-1 < len(h) {
		return h[n-1]
	}
	return logic.X(1)
}
func (f *fakeCtx) Cycle() uint64 { return 7 }

func TestExprBasics(t *testing.T) {
	c := &fakeCtx{vals: map[string]logic.BV{
		"a": logic.FromUint64(4, 5),
		"b": logic.FromUint64(4, 3),
		"x": logic.X(4),
	}}
	cases := []struct {
		name string
		e    Expr
		want logic.Bit
	}{
		{"eq-false", Eq(Sig("a"), Sig("b")), logic.L0},
		{"eq-true", Eq(Sig("a"), U(4, 5)), logic.L1},
		{"ne", Ne(Sig("a"), Sig("b")), logic.L1},
		{"lt", Lt(Sig("b"), Sig("a")), logic.L1},
		{"le", Le(Sig("a"), Sig("a")), logic.L1},
		{"and", And(B(true), B(false)), logic.L0},
		{"or", Or(B(true), B(false)), logic.L1},
		{"not", Not(B(true)), logic.L0},
		{"isunknown-yes", IsUnknown(Sig("x")), logic.L1},
		{"isunknown-no", IsUnknown(Sig("a")), logic.L0},
		{"redor", RedOr(Sig("a")), logic.L1},
		{"slice", Eq(Slice(Sig("a"), 2, 0), U(3, 5)), logic.L1},
		{"index", Eq(Index(Sig("a"), 0), U(1, 1)), logic.L1},
		{"add", Eq(Add(Sig("a"), Sig("b")), U(4, 8)), logic.L1},
		{"sub", Eq(Sub(Sig("a"), Sig("b")), U(4, 2)), logic.L1},
		{"bxor", Eq(BXor(Sig("a"), Sig("b")), U(4, 6)), logic.L1},
		{"isinside-yes", IsInside(Sig("a"), U(4, 1), U(4, 5)), logic.L1},
		{"isinside-no", IsInside(Sig("a"), U(4, 1), U(4, 2)), logic.L0},
		{"implies-vacuous", Implies(B(false), B(false)), logic.L1},
		{"implies-holds", Implies(B(true), B(true)), logic.L1},
		{"implies-fails", Implies(B(true), B(false)), logic.L0},
		{"implies-x-antecedent", Implies(Sig("x"), B(false)), logic.L1},
	}
	for _, tc := range cases {
		if got := tc.e.Eval(c).Truthy(); got != tc.want {
			t.Errorf("%s: %s = %v, want %v", tc.name, tc.e, got, tc.want)
		}
	}
}

func TestSignalsCollection(t *testing.T) {
	e := Implies(Eq(Sig("a"), Past("b", 3)), Stable("c"))
	set := map[string]int{}
	e.Signals(set)
	if set["b"] != 3 {
		t.Errorf("past depth of b = %d", set["b"])
	}
	if _, ok := set["a"]; !ok {
		t.Error("a missing")
	}
	if set["c"] != 1 {
		t.Errorf("stable depth of c = %d", set["c"])
	}
}

const fsmSrc = `
module fsm (input clk_i, input rst_ni, input go, output reg [1:0] st);
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) st <= 2'd0;
    else begin
      case (st)
        2'd0: if (go) st <= 2'd1;
        2'd1: st <= 2'd2;
        2'd2: st <= 2'd0;
        default: st <= 2'd0;
      endcase
    end
  end
endmodule`

func TestCheckerViolation(t *testing.T) {
	s := newSim(t, fsmSrc, "fsm")
	// Deliberately wrong property: st never reaches 2.
	chk := NewChecker(&Property{
		Name:       "never_two",
		Expr:       Ne(Sig("st"), U(2, 2)),
		DisableIff: Not(Sig("rst_ni")),
		CWE:        "CWE-TEST",
	})
	chk.Bind(s)
	info := sim.DetectClockReset(s.Design())
	if err := s.ApplyReset(info, 2); err != nil {
		t.Fatal(err)
	}
	_ = s.Poke("go", logic.Ones(1))
	for i := 0; i < 5; i++ {
		_ = s.Tick(info.Clock)
	}
	vs := chk.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (FirstOnly)", len(vs))
	}
	if vs[0].Property != "never_two" || vs[0].CWE != "CWE-TEST" || vs[0].Cycle == 0 {
		t.Errorf("violation = %+v", vs[0])
	}
}

func TestCheckerHoldingPropertyPasses(t *testing.T) {
	s := newSim(t, fsmSrc, "fsm")
	chk := NewChecker(&Property{
		Name:       "legal_states",
		Expr:       Lt(Sig("st"), U(2, 3)),
		DisableIff: Not(Sig("rst_ni")),
	})
	chk.Bind(s)
	info := sim.DetectClockReset(s.Design())
	_ = s.ApplyReset(info, 2)
	_ = s.Poke("go", logic.Ones(1))
	for i := 0; i < 10; i++ {
		_ = s.Tick(info.Clock)
	}
	if len(chk.Violations()) != 0 {
		t.Errorf("unexpected violations: %+v", chk.Violations())
	}
}

func TestPastAndStable(t *testing.T) {
	s := newSim(t, fsmSrc, "fsm")
	// After go, st goes 0 -> 1 -> 2 -> 0; check $past sees the chain:
	// st == 2 |-> $past(st) == 1.
	chk := NewChecker(&Property{
		Name:       "two_after_one",
		Expr:       Implies(Eq(Sig("st"), U(2, 2)), Eq(Past("st", 1), U(2, 1))),
		DisableIff: Not(Sig("rst_ni")),
	})
	chk.Bind(s)
	info := sim.DetectClockReset(s.Design())
	_ = s.ApplyReset(info, 2)
	_ = s.Poke("go", logic.Ones(1))
	for i := 0; i < 8; i++ {
		_ = s.Tick(info.Clock)
	}
	if len(chk.Violations()) != 0 {
		t.Errorf("chain property should hold: %+v", chk.Violations())
	}
}

func TestPastBeforeHistoryIsX(t *testing.T) {
	s := newSim(t, fsmSrc, "fsm")
	// A property over $past at cycle 0 must not fire (X antecedent).
	chk := NewChecker(&Property{
		Name: "past_guard",
		Expr: Implies(Eq(Past("st", 4), U(2, 3)), B(false)),
	})
	chk.Bind(s)
	info := sim.DetectClockReset(s.Design())
	_ = s.ApplyReset(info, 1)
	_ = s.Tick(info.Clock)
	if len(chk.Violations()) != 0 {
		t.Errorf("X history must not fire properties: %+v", chk.Violations())
	}
}

func TestCheckerReset(t *testing.T) {
	s := newSim(t, fsmSrc, "fsm")
	chk := NewChecker(&Property{
		Name:       "never_one",
		Expr:       Ne(Sig("st"), U(2, 1)),
		DisableIff: Not(Sig("rst_ni")),
	})
	chk.Bind(s)
	info := sim.DetectClockReset(s.Design())
	_ = s.ApplyReset(info, 1)
	_ = s.Poke("go", logic.Ones(1))
	for i := 0; i < 3; i++ {
		_ = s.Tick(info.Clock)
	}
	if len(chk.Violations()) != 1 {
		t.Fatalf("expected one violation, got %d", len(chk.Violations()))
	}
	chk.Reset()
	if len(chk.Violations()) != 0 {
		t.Error("reset should clear violations")
	}
	for i := 0; i < 4; i++ {
		_ = s.Tick(info.Clock)
	}
	if len(chk.Violations()) != 1 {
		t.Errorf("property should fire again after reset, got %d", len(chk.Violations()))
	}
}

func TestUnknownSignalNameIsX(t *testing.T) {
	s := newSim(t, fsmSrc, "fsm")
	chk := NewChecker(&Property{
		Name: "missing",
		Expr: Eq(Sig("does_not_exist"), U(1, 1)),
	})
	chk.Bind(s)
	info := sim.DetectClockReset(s.Design())
	_ = s.ApplyReset(info, 2)
	if len(chk.Violations()) != 0 {
		t.Error("unknown signal comparisons are X and must not fire")
	}
}

package par

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// SolveCache is the cross-worker constraint cache: solved (or proven
// unsat) step plans keyed by (graph, target node, query-context hash),
// striped by key hash to keep publisher contention low. Because the
// engine seeds cached queries canonically (see core.Config.PlanCache),
// every worker computing the same key produces the identical value, so
// concurrent Stores of one key are benign and a Lookup hit returns
// exactly what a live solve would have.
type SolveCache struct {
	stripes [cacheStripes]cacheStripe
	hits    atomic.Int64
	misses  atomic.Int64
}

const cacheStripes = 16

type cacheStripe struct {
	mu sync.Mutex
	m  map[core.PlanKey]core.CachedPlan
}

// NewSolveCache returns an empty cache.
func NewSolveCache() *SolveCache {
	c := &SolveCache{}
	for i := range c.stripes {
		c.stripes[i].m = map[core.PlanKey]core.CachedPlan{}
	}
	return c
}

func (c *SolveCache) stripe(k core.PlanKey) *cacheStripe {
	h := k.Ctx ^ uint64(k.Graph)*0x9E3779B97F4A7C15 ^ uint64(k.To)*0xBF58476D1CE4E5B9
	return &c.stripes[h%cacheStripes]
}

// Lookup implements core.PlanCache.
func (c *SolveCache) Lookup(k core.PlanKey) (core.CachedPlan, bool) {
	s := c.stripe(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Store implements core.PlanCache.
func (c *SolveCache) Store(k core.PlanKey, v core.CachedPlan) {
	s := c.stripe(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Hits and Misses report the global lookup tallies. The sum is
// deterministic for a fixed seed set; the split depends on scheduling.
func (c *SolveCache) Hits() int64   { return c.hits.Load() }
func (c *SolveCache) Misses() int64 { return c.misses.Load() }

// Len returns the number of distinct cached queries.
func (c *SolveCache) Len() int {
	n := 0
	for i := range c.stripes {
		c.stripes[i].mu.Lock()
		n += len(c.stripes[i].m)
		c.stripes[i].mu.Unlock()
	}
	return n
}

package par

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/designs"
	"repro/internal/obs"
)

// mailbox returns the buggy SCMI mailbox benchmark — small enough for
// quick campaigns, rich enough to exercise solving and bug detection.
func mailbox() *designs.Benchmark {
	return designs.IPBenchmark(designs.Mailbox(), true)
}

func testCoreConfig(seed int64) core.Config {
	return core.Config{
		Interval:              50,
		Threshold:             2,
		MaxVectors:            3000,
		Seed:                  seed,
		UseSnapshots:          true,
		ContinueAfterCoverage: true,
	}
}

// runTraced runs a campaign with a JSONL tracer attached and returns
// the report plus the raw trace lines.
func runTraced(t *testing.T, workers int, seed int64) (*Report, []string) {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	o := obs.New(obs.Options{Tracer: tr})
	b := mailbox()
	cc := testCoreConfig(seed)
	cc.Obs = o
	rep, err := Run(b.Elaborate, b.Properties, Config{Config: cc, Workers: workers})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("tracer close: %v", err)
	}
	return rep, strings.Split(strings.TrimSpace(buf.String()), "\n")
}

// normalizeReport strips the fields that legitimately vary across runs
// of the same seed set: wall-clock durations, and the hit/miss split of
// the shared plan cache (the sum is deterministic, the split depends on
// which worker solved a key first).
func normalizeReport(r *core.Report) core.Report {
	c := *r
	c.Timings.TotalNS = 0
	c.Timings.FuzzNS = 0
	c.Timings.SymbolicNS = 0
	c.Timings.RollbackNS = 0
	c.Timings.VCDNS = 0
	c.Timings.Solve.BlastNS = 0
	c.Timings.Solve.CDCLNS = 0
	c.SolveCacheHits += c.SolveCacheMisses
	c.SolveCacheMisses = 0
	return c
}

// normalizeTrace parses the JSONL lines, zeroes every wall-clock field
// plus the cache hit/miss attribution (which worker solved a shared
// key first is scheduling-dependent; only the solve itself is
// deterministic), re-serializes, and sorts — turning an
// interleaving-ordered stream into a comparable event multiset.
func normalizeTrace(t *testing.T, lines []string) []string {
	t.Helper()
	out := make([]string, 0, len(lines))
	for i, ln := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line %d: %v", i+1, err)
		}
		ev.TNS, ev.DurNS, ev.BlastNS, ev.SolveNS = 0, 0, 0, 0
		ev.Cache, ev.OriginWorker, ev.OriginSpan = "", 0, ""
		b, err := json.Marshal(&ev)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	sort.Strings(out)
	return out
}

// TestParallelDeterminism is the regression pinned by the issue: two
// 4-worker campaigns with identical seeds must produce identical merged
// coverage counts, identical per-worker reports, and identical trace
// event multisets, regardless of goroutine interleaving. CI runs this
// under -race, so it also doubles as the data-race probe.
func TestParallelDeterminism(t *testing.T) {
	repA, traceA := runTraced(t, 4, 7)
	repB, traceB := runTraced(t, 4, 7)

	if repA.Workers != 4 || len(repA.PerWorker) != 4 {
		t.Fatalf("want 4 workers, got %d (%d reports)", repA.Workers, len(repA.PerWorker))
	}
	if !reflect.DeepEqual(repA.Seeds, repB.Seeds) {
		t.Fatalf("seed vectors differ: %v vs %v", repA.Seeds, repB.Seeds)
	}
	ma, mb := normalizeReport(repA.Merged), normalizeReport(repB.Merged)
	if !reflect.DeepEqual(ma, mb) {
		t.Errorf("merged reports differ:\n%+v\n%+v", ma, mb)
	}
	for r := range repA.PerWorker {
		wa, wb := normalizeReport(repA.PerWorker[r]), normalizeReport(repB.PerWorker[r])
		if !reflect.DeepEqual(wa, wb) {
			t.Errorf("worker %d reports differ:\n%+v\n%+v", r, wa, wb)
		}
	}
	if hA, hB := repA.CacheHits+repA.CacheMisses, repB.CacheHits+repB.CacheMisses; hA != hB {
		t.Errorf("cache consultation totals differ: %d vs %d", hA, hB)
	}

	na, nb := normalizeTrace(t, traceA), normalizeTrace(t, traceB)
	if len(na) != len(nb) {
		t.Fatalf("trace lengths differ: %d vs %d events", len(na), len(nb))
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("trace multisets diverge at sorted index %d:\n%s\n%s", i, na[i], nb[i])
		}
	}

	// Both traces must also be schema-valid with four worker lanes.
	for i, lines := range [][]string{traceA, traceB} {
		sum, err := obs.ValidateTrace(strings.NewReader(strings.Join(lines, "\n")))
		if err != nil {
			t.Fatalf("campaign %d: trace invalid: %v", i, err)
		}
		if sum.Workers != 4 {
			t.Errorf("campaign %d: trace shows %d worker lanes, want 4", i, sum.Workers)
		}
	}
}

// TestSingleWorkerMatchesEngine pins the -workers 1 compatibility
// contract: a 1-worker campaign's trajectory is identical to a plain
// engine run with the same configuration (sharding and plan sharing are
// disabled, rank 0 keeps the base seed).
func TestSingleWorkerMatchesEngine(t *testing.T) {
	b := mailbox()

	d, err := b.Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(d, b.Properties, testCoreConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	prep, err := Run(b.Elaborate, b.Properties, Config{Config: testCoreConfig(11), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Workers != 1 || len(prep.PerWorker) != 1 {
		t.Fatalf("want 1 worker, got %d", prep.Workers)
	}
	if prep.Seeds[0] != 11 {
		t.Fatalf("rank 0 must keep the base seed, got %d", prep.Seeds[0])
	}

	got, want := normalizeReport(prep.PerWorker[0]), normalizeReport(direct)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("1-worker campaign diverged from plain engine:\n%+v\n%+v", got, want)
	}
	// The merged view of one worker carries the same coverage totals
	// (its Curve is intentionally left to the live campaign curve).
	m := prep.Merged
	if m.FinalPoints != direct.FinalPoints || m.EdgesCovered != direct.EdgesCovered ||
		m.NodesCovered != direct.NodesCovered || m.Vectors != direct.Vectors ||
		len(m.Bugs) != len(direct.Bugs) {
		t.Errorf("merged totals diverged: %+v vs %+v", m, direct)
	}
}

// TestFrontierNoDoubleCount publishes the same local coverage twice
// (same worker, then a second worker that covered the same sets) and
// checks the global point counter only advances on genuinely-new
// inserts.
func TestFrontierNoDoubleCount(t *testing.T) {
	cv := &cov.CFGCov{
		NodesSeen: []map[int]bool{{0: true, 1: true, 2: true}},
		EdgesSeen: []map[int]bool{{0: true, 4: true}},
		Tuples:    map[string]bool{"a|b": true},
	}
	fr := NewFrontier(1, 8, 2, 0, false, nil)

	fr.Publish(0, cv, 100)
	if got := fr.points.Load(); got != 6 {
		t.Fatalf("first publish: points = %d, want 6 (3 nodes + 2 edges + 1 tuple)", got)
	}
	fr.Publish(0, cv, 150) // same worker republishes at the next boundary
	fr.Publish(1, cv, 120) // a second worker covered the identical sets
	if got := fr.points.Load(); got != 6 {
		t.Fatalf("republish double-counted: points = %d, want 6", got)
	}
	if got := fr.edges.Load(); got != 2 {
		t.Fatalf("edge counter = %d, want 2", got)
	}
}

// TestShardOwnership checks the static work-queue partition: every
// (graph, edge) pair is owned by exactly one rank, for several worker
// counts.
func TestShardOwnership(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		for gi := 0; gi < 6; gi++ {
			for eid := 0; eid < 64; eid++ {
				owners := 0
				for r := 0; r < workers; r++ {
					if (core.ShardSpec{Rank: r, Workers: workers}).Owns(gi, eid) {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("workers=%d: edge (%d,%d) has %d owners", workers, gi, eid, owners)
				}
			}
		}
	}
	if (core.ShardSpec{}).Active() {
		t.Error("zero ShardSpec must be inactive")
	}
	if (core.ShardSpec{Workers: 1}).Active() {
		t.Error("1-worker ShardSpec must be inactive")
	}
}

// TestWorkerSeeds pins the seed-derivation contract: rank 0 keeps the
// base seed and all ranks are pairwise distinct.
func TestWorkerSeeds(t *testing.T) {
	const base = int64(42)
	if WorkerSeed(base, 0) != base {
		t.Fatal("rank 0 must keep the base seed")
	}
	seen := map[int64]int{}
	for r := 0; r < 16; r++ {
		s := WorkerSeed(base, r)
		if prev, dup := seen[s]; dup {
			t.Fatalf("ranks %d and %d share seed %d", prev, r, s)
		}
		seen[s] = r
	}
}

// TestStopAtPoints smoke-tests the opt-in time-to-target mode: the
// campaign stops early once the global frontier reaches the target.
func TestStopAtPoints(t *testing.T) {
	b := mailbox()
	cc := testCoreConfig(3)
	cc.MaxVectors = 50000
	rep, err := Run(b.Elaborate, b.Properties, Config{Config: cc, Workers: 2, StopAtPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merged.FinalPoints < 10 {
		t.Fatalf("stopped below target: %d points", rep.Merged.FinalPoints)
	}
	if rep.TimeToTargetNS <= 0 {
		t.Error("TimeToTargetNS not recorded")
	}
	if rep.Merged.Vectors >= 2*cc.MaxVectors {
		t.Errorf("campaign did not stop early: %d vectors applied", rep.Merged.Vectors)
	}
}

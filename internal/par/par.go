// Package par is the parallel campaign orchestrator: N core.Engine
// workers run concurrently — each with its own elaborated design
// instance, simulator, and seed-derived RNG — against a shared global
// coverage frontier, a statically sharded work queue over the CFG edge
// space, and a cross-worker solved-plan cache.
//
// The merged report is deterministic for a fixed seed set regardless
// of goroutine interleaving. That property is engineered, not assumed:
//
//   - Workers run the unmodified Algorithm-1 loop against their LOCAL
//     coverage. The global frontier is a sink (status, curve, opt-in
//     stop conditions), never a steering input.
//   - The "shared work queue" is static shard ownership (core.ShardSpec):
//     each uncovered CFG edge belongs to exactly one worker until that
//     worker's whole shard is locally drained, so no two workers burn
//     solver time on the same frontier target and claim order cannot
//     depend on scheduling.
//   - The solved-plan cache is a pure memoization with canonical
//     per-key seeds: a hit returns byte-for-byte what the live solve
//     would have produced, so cache warmth changes wall time only.
//   - The merge is by worker rank, not arrival order: coverage is a
//     set union (idempotent), numeric stats are commutative sums, bugs
//     are concatenated in rank order and deduped by (property, cycle).
//
// The only nondeterministic outputs are wall-clock values (Timings NS
// fields, TimeToTargetNS) and the live campaign curve, which is
// publish-ordered by design.
//
// The frontier, the plan cache, and the rank merge are exported
// (Frontier, SolveCache, MergeReports) so internal/dist can host the
// same campaign state on a network coordinator: the determinism
// argument transfers unchanged because remote workers couple through
// exactly the same three interfaces.
package par

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/elab"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/props"
)

// Config parameterizes a parallel campaign. The embedded core.Config
// is the per-worker Algorithm-1 configuration; Seed is the campaign
// base seed (worker r runs with WorkerSeed(Seed, r)) and Obs, when
// set, is the campaign-level observer — workers derive per-lane
// observers from it via ForWorker.
type Config struct {
	core.Config

	// Workers is the worker count; <= 1 runs a single worker (whose
	// trajectory is identical to a plain engine run with the same
	// core.Config, since sharding and plan sharing are disabled).
	Workers int

	// StopAtPoints, when > 0, stops every worker at the first interval
	// boundary after the global point count reaches the target
	// (benchmarking time-to-coverage). The stop vector count depends
	// on scheduling; leave 0 for deterministic fixed-budget campaigns.
	StopAtPoints int
	// StopWhenAllCovered stops once every static CFG edge is globally
	// covered (also scheduling-dependent; off by default).
	StopWhenAllCovered bool
	// SplitBudget divides MaxVectors across workers instead of giving
	// each worker the full budget.
	SplitBudget bool
	// DisableSolveSharing turns the cross-worker plan cache off.
	DisableSolveSharing bool
}

// Report is a parallel campaign's outcome: the deterministic merged
// report plus per-worker reports (by rank) and campaign-level stats.
type Report struct {
	Workers int
	// Seeds lists each worker's derived seed, by rank.
	Seeds []int64
	// Merged is the rank-merged campaign report. Coverage fields are
	// the set union over workers; counters are sums; bugs are deduped
	// by (property, cycle) in rank order; PrunedTargets and GraphStats
	// come from worker 0 (static per design); Curve is left empty —
	// the interleaving-ordered live curve is in Report.Curve.
	Merged *core.Report
	// PerWorker holds each worker's own report, by rank.
	PerWorker []*core.Report

	// WallNS is the campaign wall time (launch to last worker join).
	WallNS int64
	// TargetPoints echoes StopAtPoints; TimeToTargetNS is the wall
	// time at which the global frontier first reached it (0 if not
	// configured or not reached).
	TargetPoints   int
	TimeToTargetNS int64

	// CacheHits / CacheMisses are the shared plan cache's global
	// tallies (hits+misses is deterministic; the split is not).
	CacheHits, CacheMisses int64

	// Curve is the live campaign coverage curve (global points vs
	// summed vectors, publish-ordered — a monitoring artifact).
	Curve []obs.CurvePoint
}

// WorkerSeed derives worker r's engine seed from the campaign base
// seed. Rank 0 keeps the base seed, so a 1-worker campaign reproduces
// the plain single-engine run. The derivation is a pure function of
// (base, rank): a distributed replacement worker taking over a dead
// worker's rank re-derives the same seed and therefore reproduces the
// lost worker's trajectory exactly.
func WorkerSeed(base int64, rank int) int64 {
	if rank == 0 {
		return base
	}
	return base + int64(rank)*0x9E3779B9
}

// Run executes a parallel campaign. factory elaborates one fresh
// design instance per worker (instances must not share mutable state);
// properties are shared (immutable ASTs — checker state is per-env).
func Run(factory func() (*elab.Design, error), properties []*props.Property, c Config) (*Report, error) {
	return RunContext(context.Background(), factory, properties, c)
}

// RunContext is Run with cancellation: when ctx is cancelled every
// worker stops at its next interval boundary, the partial per-worker
// reports are merged as usual, and the merged report carries
// Interrupted=true.
func RunContext(ctx context.Context, factory func() (*elab.Design, error), properties []*props.Property, c Config) (*Report, error) {
	n := c.Workers
	if n < 1 {
		n = 1
	}
	base := c.Config
	baseObs := base.Obs

	var cache *SolveCache
	if n > 1 && !c.DisableSolveSharing {
		cache = NewSolveCache()
	}

	// fr is assigned after the engines exist (its shape comes from the
	// first worker's partition); the Sync closures below only run once
	// Run is called on each engine, strictly after the assignment.
	var fr *Frontier

	engines := make([]*core.Engine, n)
	seeds := make([]int64, n)
	for r := 0; r < n; r++ {
		d, err := factory()
		if err != nil {
			return nil, fmt.Errorf("par: worker %d: %w", r, err)
		}
		wc := base
		wc.Seed = WorkerSeed(base.Seed, r)
		wc.SharedSeed = base.Seed
		seeds[r] = wc.Seed
		if n > 1 {
			wc.Shard = core.ShardSpec{Rank: r, Workers: n}
		}
		if cache != nil {
			wc.PlanCache = cache
		}
		if wc.CFG.Pin != nil {
			// Each engine writes its reset pin into this map during
			// construction; give every worker its own copy.
			pin := make(map[string]logic.BV, len(wc.CFG.Pin))
			for k, v := range wc.CFG.Pin {
				pin[k] = v
			}
			wc.CFG.Pin = pin
		}
		if c.SplitBudget && n > 1 {
			share := base.MaxVectors / uint64(n)
			if uint64(r) < base.MaxVectors%uint64(n) {
				share++
			}
			wc.MaxVectors = share
		}
		wc.Obs = baseObs.ForWorker(r + 1)
		// Prof ranks are 0-based (they mirror dist ranks, so the merged
		// ledger is byte-identical to the distributed run's).
		wc.Prof = base.Prof.ForWorker(r)
		rank := r
		wc.Sync = func(cv *cov.CFGCov, rep *core.Report) bool {
			fr.Publish(rank, cv, rep.Vectors)
			return fr.ShouldStop()
		}
		eng, err := core.New(d, properties, wc)
		if err != nil {
			return nil, fmt.Errorf("par: worker %d: %w", r, err)
		}
		engines[r] = eng
	}

	part := engines[0].Graph()
	edgesTotal := 0
	for _, g := range part.Graphs {
		edgesTotal += len(g.Edges)
	}
	fr = NewFrontier(len(part.Graphs), edgesTotal, n, c.StopAtPoints, c.StopWhenAllCovered, baseObs)

	baseObs.CampaignStart(0, 0)
	start := time.Now()
	fr.start = start

	reports := make([]*core.Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rep, err := engines[rank].RunContext(ctx)
			if err != nil {
				errs[rank] = err
				fr.ForceStop() // let the other workers bail at their next boundary
				return
			}
			reports[rank] = rep
		}(r)
	}
	wg.Wait()
	wallNS := int64(time.Since(start))

	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("par: worker %d: %w", r, err)
		}
	}

	covs := make([]*cov.CFGCov, n)
	for r, e := range engines {
		covs[r] = e.Coverage()
	}
	merged := MergeReports(part, covs, reports)
	out := &Report{
		Workers:        n,
		Seeds:          seeds,
		Merged:         merged,
		PerWorker:      reports,
		WallNS:         wallNS,
		TargetPoints:   c.StopAtPoints,
		TimeToTargetNS: fr.TimeToTargetNS(),
		Curve:          fr.Curve(),
	}
	if cache != nil {
		out.CacheHits, out.CacheMisses = cache.Hits(), cache.Misses()
	}

	FinalizeMetrics(baseObs, merged)
	baseObs.Cycles(merged.Cycles)
	baseObs.CampaignEnd(merged.Vectors, merged.FinalPoints)
	return out, nil
}

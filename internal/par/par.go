// Package par is the parallel campaign orchestrator: N core.Engine
// workers run concurrently — each with its own elaborated design
// instance, simulator, and seed-derived RNG — against a shared global
// coverage frontier, a statically sharded work queue over the CFG edge
// space, and a cross-worker solved-plan cache.
//
// The merged report is deterministic for a fixed seed set regardless
// of goroutine interleaving. That property is engineered, not assumed:
//
//   - Workers run the unmodified Algorithm-1 loop against their LOCAL
//     coverage. The global frontier is a sink (status, curve, opt-in
//     stop conditions), never a steering input.
//   - The "shared work queue" is static shard ownership (core.ShardSpec):
//     each uncovered CFG edge belongs to exactly one worker until that
//     worker's whole shard is locally drained, so no two workers burn
//     solver time on the same frontier target and claim order cannot
//     depend on scheduling.
//   - The solved-plan cache is a pure memoization with canonical
//     per-query seeds: a hit returns byte-for-byte what the live solve
//     would have produced, so cache warmth changes wall time only.
//   - The merge is by worker rank, not arrival order: coverage is a
//     set union (idempotent), numeric stats are commutative sums, bugs
//     are concatenated in rank order and deduped by (property, cycle).
//
// The only nondeterministic outputs are wall-clock values (Timings NS
// fields, TimeToTargetNS) and the live campaign curve, which is
// publish-ordered by design.
package par

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/elab"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/props"
)

// Config parameterizes a parallel campaign. The embedded core.Config
// is the per-worker Algorithm-1 configuration; Seed is the campaign
// base seed (worker r runs with WorkerSeed(Seed, r)) and Obs, when
// set, is the campaign-level observer — workers derive per-lane
// observers from it via ForWorker.
type Config struct {
	core.Config

	// Workers is the worker count; <= 1 runs a single worker (whose
	// trajectory is identical to a plain engine run with the same
	// core.Config, since sharding and plan sharing are disabled).
	Workers int

	// StopAtPoints, when > 0, stops every worker at the first interval
	// boundary after the global point count reaches the target
	// (benchmarking time-to-coverage). The stop vector count depends
	// on scheduling; leave 0 for deterministic fixed-budget campaigns.
	StopAtPoints int
	// StopWhenAllCovered stops once every static CFG edge is globally
	// covered (also scheduling-dependent; off by default).
	StopWhenAllCovered bool
	// SplitBudget divides MaxVectors across workers instead of giving
	// each worker the full budget.
	SplitBudget bool
	// DisableSolveSharing turns the cross-worker plan cache off.
	DisableSolveSharing bool
}

// Report is a parallel campaign's outcome: the deterministic merged
// report plus per-worker reports (by rank) and campaign-level stats.
type Report struct {
	Workers int
	// Seeds lists each worker's derived seed, by rank.
	Seeds []int64
	// Merged is the rank-merged campaign report. Coverage fields are
	// the set union over workers; counters are sums; bugs are deduped
	// by (property, cycle) in rank order; PrunedTargets and GraphStats
	// come from worker 0 (static per design); Curve is left empty —
	// the interleaving-ordered live curve is in Report.Curve.
	Merged *core.Report
	// PerWorker holds each worker's own report, by rank.
	PerWorker []*core.Report

	// WallNS is the campaign wall time (launch to last worker join).
	WallNS int64
	// TargetPoints echoes StopAtPoints; TimeToTargetNS is the wall
	// time at which the global frontier first reached it (0 if not
	// configured or not reached).
	TargetPoints   int
	TimeToTargetNS int64

	// CacheHits / CacheMisses are the shared plan cache's global
	// tallies (hits+misses is deterministic; the split is not).
	CacheHits, CacheMisses int64

	// Curve is the live campaign coverage curve (global points vs
	// summed vectors, publish-ordered — a monitoring artifact).
	Curve []obs.CurvePoint
}

// WorkerSeed derives worker r's engine seed from the campaign base
// seed. Rank 0 keeps the base seed, so a 1-worker campaign reproduces
// the plain single-engine run.
func WorkerSeed(base int64, rank int) int64 {
	if rank == 0 {
		return base
	}
	return base + int64(rank)*0x9E3779B9
}

// Run executes a parallel campaign. factory elaborates one fresh
// design instance per worker (instances must not share mutable state);
// properties are shared (immutable ASTs — checker state is per-env).
func Run(factory func() (*elab.Design, error), properties []*props.Property, c Config) (*Report, error) {
	n := c.Workers
	if n < 1 {
		n = 1
	}
	base := c.Config
	baseObs := base.Obs

	var cache *SolveCache
	if n > 1 && !c.DisableSolveSharing {
		cache = NewSolveCache()
	}

	// fr is assigned after the engines exist (its shape comes from the
	// first worker's partition); the Sync closures below only run once
	// Run is called on each engine, strictly after the assignment.
	var fr *frontier

	engines := make([]*core.Engine, n)
	seeds := make([]int64, n)
	for r := 0; r < n; r++ {
		d, err := factory()
		if err != nil {
			return nil, fmt.Errorf("par: worker %d: %w", r, err)
		}
		wc := base
		wc.Seed = WorkerSeed(base.Seed, r)
		wc.SharedSeed = base.Seed
		seeds[r] = wc.Seed
		if n > 1 {
			wc.Shard = core.ShardSpec{Rank: r, Workers: n}
		}
		if cache != nil {
			wc.PlanCache = cache
		}
		if wc.CFG.Pin != nil {
			// Each engine writes its reset pin into this map during
			// construction; give every worker its own copy.
			pin := make(map[string]logic.BV, len(wc.CFG.Pin))
			for k, v := range wc.CFG.Pin {
				pin[k] = v
			}
			wc.CFG.Pin = pin
		}
		if c.SplitBudget && n > 1 {
			share := base.MaxVectors / uint64(n)
			if uint64(r) < base.MaxVectors%uint64(n) {
				share++
			}
			wc.MaxVectors = share
		}
		wc.Obs = baseObs.ForWorker(r + 1)
		rank := r
		wc.Sync = func(cv *cov.CFGCov, rep *core.Report) bool {
			fr.publish(rank, cv, rep.Vectors)
			return fr.shouldStop()
		}
		eng, err := core.New(d, properties, wc)
		if err != nil {
			return nil, fmt.Errorf("par: worker %d: %w", r, err)
		}
		engines[r] = eng
	}

	part := engines[0].Graph()
	edgesTotal := 0
	for _, g := range part.Graphs {
		edgesTotal += len(g.Edges)
	}
	fr = newFrontier(len(part.Graphs), edgesTotal, n, c.StopAtPoints, c.StopWhenAllCovered, baseObs)

	baseObs.CampaignStart(0, 0)
	start := time.Now()
	fr.start = start

	reports := make([]*core.Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rep, err := engines[rank].Run()
			if err != nil {
				errs[rank] = err
				fr.forceStop() // let the other workers bail at their next boundary
				return
			}
			reports[rank] = rep
		}(r)
	}
	wg.Wait()
	wallNS := int64(time.Since(start))

	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("par: worker %d: %w", r, err)
		}
	}

	merged := mergeReports(engines, reports)
	out := &Report{
		Workers:        n,
		Seeds:          seeds,
		Merged:         merged,
		PerWorker:      reports,
		WallNS:         wallNS,
		TargetPoints:   c.StopAtPoints,
		TimeToTargetNS: fr.timeToTargetNS(),
		Curve:          fr.Curve(),
	}
	if cache != nil {
		out.CacheHits, out.CacheMisses = cache.Hits(), cache.Misses()
	}

	finalizeMetrics(baseObs, merged)
	baseObs.Cycles(merged.Cycles)
	baseObs.CampaignEnd(merged.Vectors, merged.FinalPoints)
	return out, nil
}

// mergeReports folds the per-worker reports into one campaign report,
// strictly in rank order so the result is independent of completion
// order. Coverage is recomputed as a set union of the worker monitors
// over worker 0's partition (cluster graphs are built
// deterministically, so IDs agree across workers).
func mergeReports(engines []*core.Engine, reports []*core.Report) *core.Report {
	mcov := cov.NewCFGCov(engines[0].Graph())
	for _, e := range engines {
		mcov.Merge(e.Coverage())
	}

	m := &core.Report{}
	first := reports[0]
	m.PrunedTargets = first.PrunedTargets
	m.GraphStats = first.GraphStats

	seen := map[string]bool{}
	for _, r := range reports {
		m.Vectors += r.Vectors
		m.Cycles += r.Cycles
		m.SymbolicInvocations += r.SymbolicInvocations
		m.SolvedPlans += r.SolvedPlans
		m.Rollbacks += r.Rollbacks
		m.Replays += r.Replays
		m.CheckpointsTaken += r.CheckpointsTaken
		m.VCDBytes += r.VCDBytes
		m.PrunedSolves += r.PrunedSolves
		m.CovEventsDropped += r.CovEventsDropped
		m.SolveCacheHits += r.SolveCacheHits
		m.SolveCacheMisses += r.SolveCacheMisses
		mergeTimings(&m.Timings, &r.Timings)
		for _, b := range r.Bugs {
			key := fmt.Sprintf("%s@%d", b.Property, b.Cycle)
			if seen[key] {
				continue
			}
			seen[key] = true
			m.Bugs = append(m.Bugs, b)
		}
	}

	m.FinalPoints = mcov.Points()
	m.NodesCovered, m.NodesTotal = mcov.NodeCoverage()
	m.EdgesCovered, m.EdgesTotal = mcov.EdgeCoverage()
	m.TupleCount = len(mcov.Tuples)
	return m
}

// mergeTimings sums the phase and solver totals (commutative, so the
// counts are rank-order independent; the NS fields are wall clock and
// carry the usual nondeterminism).
func mergeTimings(dst, src *core.Timings) {
	dst.TotalNS += src.TotalNS
	dst.FuzzNS += src.FuzzNS
	dst.SymbolicNS += src.SymbolicNS
	dst.RollbackNS += src.RollbackNS
	dst.VCDNS += src.VCDNS
	dst.CheckpointBytes += src.CheckpointBytes
	d, s := &dst.Solve, &src.Solve
	d.Dispatches += s.Dispatches
	d.Sat += s.Sat
	d.Unsat += s.Unsat
	d.Conflicts += s.Conflicts
	d.Decisions += s.Decisions
	d.Propagations += s.Propagations
	d.Clauses += s.Clauses
	d.Vars += s.Vars
	d.BlastNS += s.BlastNS
	d.CDCLNS += s.CDCLNS
}

// finalizeMetrics folds the merged campaign totals into the
// campaign-level (unprefixed) instruments, so /status and downstream
// consumers (benchtab -metrics) see campaign sums next to the w<N>_
// per-worker series.
func finalizeMetrics(o *obs.Observer, m *core.Report) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	reg.Counter("solver_dispatches").Add(int64(m.Timings.Solve.Dispatches))
	reg.Counter("solver_sat").Add(int64(m.Timings.Solve.Sat))
	reg.Counter("solver_unsat").Add(int64(m.Timings.Solve.Unsat))
	reg.Counter("plans_applied").Add(int64(m.SolvedPlans))
	reg.Counter("stagnation_events").Add(int64(m.SymbolicInvocations))
	reg.Counter("bugs_found").Add(int64(len(m.Bugs)))
	reg.Counter("cov_events_dropped").Add(int64(m.CovEventsDropped))
	reg.Counter("checkpoint_bytes").Add(m.Timings.CheckpointBytes)
	reg.Counter("prune_skips").Add(int64(m.PrunedSolves))
}

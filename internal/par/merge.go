package par

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/obs"
)

// MergeReports folds per-worker reports into one campaign report,
// strictly in rank order so the result is independent of completion
// order. Coverage is recomputed as a set union of the worker coverage
// monitors over the given partition (cluster graphs are built
// deterministically, so node and edge IDs agree across workers — and
// across processes elaborating the same design, which is what lets
// internal/dist feed this function coverage snapshots deserialized
// from the wire and obtain a report identical to the in-process run).
//
// covs and reports are indexed by worker rank and must be parallel.
// Coverage fields are the set union over workers; counters are
// commutative sums; bugs are concatenated in rank order and deduped by
// (property, cycle); PrunedTargets and GraphStats come from rank 0
// (static per design); Curve is left empty — the interleaving-ordered
// live curve is a campaign artifact, not part of the merged report.
func MergeReports(part *cfg.Partition, covs []*cov.CFGCov, reports []*core.Report) *core.Report {
	mcov := cov.NewCFGCov(part)
	for _, cv := range covs {
		mcov.Merge(cv)
	}

	m := &core.Report{}
	first := reports[0]
	m.PrunedTargets = first.PrunedTargets
	m.GraphStats = first.GraphStats

	seen := map[string]bool{}
	for _, r := range reports {
		m.Vectors += r.Vectors
		m.Cycles += r.Cycles
		m.SymbolicInvocations += r.SymbolicInvocations
		m.SolvedPlans += r.SolvedPlans
		m.Rollbacks += r.Rollbacks
		m.Replays += r.Replays
		m.CheckpointsTaken += r.CheckpointsTaken
		m.VCDBytes += r.VCDBytes
		m.PrunedSolves += r.PrunedSolves
		m.SlicedVars += r.SlicedVars
		m.InfeasibleTargets += r.InfeasibleTargets
		m.CovEventsDropped += r.CovEventsDropped
		m.SolveCacheHits += r.SolveCacheHits
		m.SolveCacheMisses += r.SolveCacheMisses
		if r.Interrupted {
			m.Interrupted = true
		}
		mergeTimings(&m.Timings, &r.Timings)
		for _, b := range r.Bugs {
			key := fmt.Sprintf("%s@%d", b.Property, b.Cycle)
			if seen[key] {
				continue
			}
			seen[key] = true
			m.Bugs = append(m.Bugs, b)
		}
	}

	m.FinalPoints = mcov.Points()
	m.NodesCovered, m.NodesTotal = mcov.NodeCoverage()
	m.EdgesCovered, m.EdgesTotal = mcov.EdgeCoverage()
	m.TupleCount = len(mcov.Tuples)
	return m
}

// mergeTimings sums the phase and solver totals (commutative, so the
// counts are rank-order independent; the NS fields are wall clock and
// carry the usual nondeterminism).
func mergeTimings(dst, src *core.Timings) {
	dst.TotalNS += src.TotalNS
	dst.FuzzNS += src.FuzzNS
	dst.SymbolicNS += src.SymbolicNS
	dst.RollbackNS += src.RollbackNS
	dst.VCDNS += src.VCDNS
	dst.CheckpointBytes += src.CheckpointBytes
	d, s := &dst.Solve, &src.Solve
	d.Dispatches += s.Dispatches
	d.Sat += s.Sat
	d.Unsat += s.Unsat
	d.Conflicts += s.Conflicts
	d.Decisions += s.Decisions
	d.Propagations += s.Propagations
	d.Clauses += s.Clauses
	d.Vars += s.Vars
	d.BlastNS += s.BlastNS
	d.CDCLNS += s.CDCLNS
}

// FinalizeMetrics folds the merged campaign totals into the
// campaign-level (unprefixed) instruments, so /status and downstream
// consumers (benchtab -metrics) see campaign sums next to the w<N>_
// per-worker series. Shared by the in-process orchestrator and the
// distributed coordinator.
func FinalizeMetrics(o *obs.Observer, m *core.Report) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	reg.Counter("solver_dispatches").Add(int64(m.Timings.Solve.Dispatches))
	reg.Counter("solver_sat").Add(int64(m.Timings.Solve.Sat))
	reg.Counter("solver_unsat").Add(int64(m.Timings.Solve.Unsat))
	reg.Counter("plans_applied").Add(int64(m.SolvedPlans))
	reg.Counter("stagnation_events").Add(int64(m.SymbolicInvocations))
	reg.Counter("bugs_found").Add(int64(len(m.Bugs)))
	reg.Counter("cov_events_dropped").Add(int64(m.CovEventsDropped))
	reg.Counter("checkpoint_bytes").Add(m.Timings.CheckpointBytes)
	reg.Counter("prune_skips").Add(int64(m.PrunedSolves))
	reg.Counter("slice_skips").Add(int64(m.InfeasibleTargets))
	reg.Counter("sliced_vars").Add(int64(m.SlicedVars))
}

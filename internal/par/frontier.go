package par

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cov"
	"repro/internal/obs"
)

// Frontier is the shared global coverage view of a campaign:
// per-cluster-graph mutex-protected node/edge sets plus striped
// interaction-tuple shards, with an atomic point counter that is only
// advanced on genuinely-new inserts — an edge covered both locally and
// globally counts exactly once, no matter how many workers publish it.
//
// The Frontier is a sink and a stop signal, never a steering input:
// worker trajectories read only their local coverage, so the campaign
// result is independent of publish interleaving. The deterministic
// merged report is computed separately (merge-by-rank over the worker
// monitors after join); the Frontier exists for live status, the
// campaign curve, and the opt-in stop conditions.
//
// It is exported so that internal/dist can host the same frontier on a
// network coordinator: remote workers publish serialized coverage
// snapshots into it exactly the way in-process workers publish their
// live monitors, and because inserts are idempotent set unions a
// re-publish after a reconnect (or a replacement worker reproducing a
// dead worker's trajectory) never double-counts.
type Frontier struct {
	start time.Time

	graphs  []*graphShard
	stripes [tupleStripes]stripeSet

	points     atomic.Int64
	edges      atomic.Int64
	edgesTotal int64

	// target > 0 stops the campaign when the global point count first
	// reaches it (bench mode: time-to-target); stopAll stops once every
	// static edge is globally covered. Both are opt-in and make the
	// stop vector-count nondeterministic — a fixed-budget campaign
	// leaves both unset and stays fully deterministic.
	target   int64
	stopAll  bool
	stopped  atomic.Bool
	targetNS atomic.Int64

	o          *obs.Observer
	workerVecs []atomic.Uint64

	curveMu sync.Mutex
	curve   []obs.CurvePoint
}

type graphShard struct {
	mu    sync.Mutex
	nodes map[int]bool
	edges map[int]bool
}

const tupleStripes = 16

type stripeSet struct {
	mu  sync.Mutex
	set map[string]bool
}

// NewFrontier builds a frontier over nGraphs cluster graphs with
// edgesTotal static edges, accepting publishes from workers ranks
// [0, workers). target > 0 arms the time-to-target stop; stopAll stops
// once every static edge is globally covered. o (nil-safe) receives
// live curve samples.
func NewFrontier(nGraphs int, edgesTotal int, workers int, target int, stopAll bool, o *obs.Observer) *Frontier {
	f := &Frontier{
		graphs:     make([]*graphShard, nGraphs),
		edgesTotal: int64(edgesTotal),
		target:     int64(target),
		stopAll:    stopAll,
		o:          o,
		workerVecs: make([]atomic.Uint64, workers),
		start:      time.Now(),
	}
	for i := range f.graphs {
		f.graphs[i] = &graphShard{nodes: map[int]bool{}, edges: map[int]bool{}}
	}
	for i := range f.stripes {
		f.stripes[i].set = map[string]bool{}
	}
	return f
}

// tupleStripe picks a stripe by FNV-1a hash so concurrent publishers
// rarely contend on the same lock.
func tupleStripe(k string) int {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint64(k[i])) * 0x100000001b3
	}
	return int(h % tupleStripes)
}

// Publish merges one worker's local coverage into the global view and
// refreshes the live campaign curve. Dynamic (off-graph) observations
// are excluded, matching CFGCov.Points. Publishing the same coverage
// twice (a worker republishing at the next boundary, a replacement
// worker re-walking a dead worker's trajectory) is idempotent.
func (f *Frontier) Publish(rank int, cv *cov.CFGCov, vectors uint64) {
	var added, addedEdges int64
	for gi := range cv.NodesSeen {
		if gi >= len(f.graphs) {
			break
		}
		gs := f.graphs[gi]
		gs.mu.Lock()
		for id := range cv.NodesSeen[gi] {
			if !gs.nodes[id] {
				gs.nodes[id] = true
				added++
			}
		}
		for id := range cv.EdgesSeen[gi] {
			if !gs.edges[id] {
				gs.edges[id] = true
				added++
				addedEdges++
			}
		}
		gs.mu.Unlock()
	}
	for t := range cv.Tuples {
		st := &f.stripes[tupleStripe(t)]
		st.mu.Lock()
		if !st.set[t] {
			st.set[t] = true
			added++
		}
		st.mu.Unlock()
	}
	if rank >= 0 && rank < len(f.workerVecs) {
		f.workerVecs[rank].Store(vectors)
	}
	pts := f.points.Add(added)
	edges := f.edges.Add(addedEdges)

	total := uint64(0)
	for i := range f.workerVecs {
		total += f.workerVecs[i].Load()
	}
	f.o.AddCurvePoint(total, int(pts))
	f.curveMu.Lock()
	f.curve = append(f.curve, obs.CurvePoint{Vectors: total, Points: int(pts)})
	f.curveMu.Unlock()

	if f.target > 0 && pts >= f.target {
		if f.stopped.CompareAndSwap(false, true) {
			f.targetNS.Store(int64(time.Since(f.start)))
		}
	}
	if f.stopAll && f.edgesTotal > 0 && edges >= f.edgesTotal {
		f.stopped.CompareAndSwap(false, true)
	}
}

// Points returns the current global point count.
func (f *Frontier) Points() int { return int(f.points.Load()) }

// ShouldStop reports whether a stop condition has fired (workers poll
// it at interval boundaries through the engine Sync hook).
func (f *Frontier) ShouldStop() bool { return f.stopped.Load() }

// ForceStop trips the stop signal (worker error paths, campaign abort).
func (f *Frontier) ForceStop() { f.stopped.Store(true) }

// TimeToTargetNS is the wall time at which the global point count first
// reached the configured target (0 if never reached or no target).
func (f *Frontier) TimeToTargetNS() int64 { return f.targetNS.Load() }

// Curve returns a copy of the live campaign coverage curve. Samples
// are wall-clock ordered (publish order), so the curve is a live-view
// artifact, not part of the deterministic merged report.
func (f *Frontier) Curve() []obs.CurvePoint {
	f.curveMu.Lock()
	defer f.curveMu.Unlock()
	out := make([]obs.CurvePoint, len(f.curve))
	copy(out, f.curve)
	return out
}

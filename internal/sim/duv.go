package sim

import (
	"repro/internal/elab"
	"repro/internal/logic"
)

// DUV is the design-under-verification contract the testbench layers
// (uvm driver/monitor, coverage monitors, property checker, fuzzing
// engine) program against. Two backends implement it: the event-driven
// four-state interpreter in this package (*Simulator) and the compiled
// backend in internal/simc (*Machine). Both expose identical
// observable semantics — same values, same branch-event stream, same
// snapshot bytes — so a campaign's trajectory is backend-independent.
type DUV interface {
	// Design returns the elaborated design under simulation.
	Design() *elab.Design
	// Get returns the current value of a signal by index.
	Get(sig int) logic.BV
	// GetMem returns a memory word (X for out-of-range).
	GetMem(mem int, addr uint64) logic.BV
	// Set performs a blocking input write, scheduling dependents.
	Set(sig int, v logic.BV)
	// Settle runs the event loop to quiescence.
	Settle() error
	// Tick drives one full clock cycle on the given clock signal.
	Tick(clk int) error
	// AdvanceCycle counts one cycle without toggling a clock
	// (combinational DUVs).
	AdvanceCycle()
	// Cycle returns the number of completed clock cycles.
	Cycle() uint64
	// SignalIndex resolves a hierarchical signal name; -1 if unknown.
	SignalIndex(name string) int
	// Peek reads a signal by name.
	Peek(name string) (logic.BV, error)
	// SetTracer installs the branch-event tracer (coverage monitor).
	SetTracer(t Tracer)
	// OnCycle registers a listener invoked after every completed cycle.
	OnCycle(fn CycleListener)
	// ApplyReset asserts the detected reset and deasserts it, leaving
	// the design in its deterministic start state.
	ApplyReset(info ResetInfo, cycles int) error
	// Snapshot captures all architectural state.
	Snapshot() *Snapshot
	// Restore rewinds to a snapshot, discarding pending events.
	Restore(snap *Snapshot)
	// EnableProfile turns on per-process evaluation counting with an
	// injected clock for sampled eval timing.
	EnableProfile(clock func() int64, sampleEvery uint64)
	// ProfileCounts returns the per-process profile (nil when off).
	ProfileCounts() (evals []uint64, sampledNS []int64, sampled []uint64)
}

// RunReset drives the standard reset sequence on any backend: assert
// the detected reset, start the clock from a defined low level, run the
// given number of cycles, deassert. Both backends route their
// ApplyReset through this one implementation so the sequence cannot
// diverge between them.
func RunReset(s DUV, info ResetInfo, cycles int) error {
	if info.Reset >= 0 {
		v := logic.Zero(1)
		if !info.ActiveLow {
			v = logic.Ones(1)
		}
		s.Set(info.Reset, v)
		if err := s.Settle(); err != nil {
			return err
		}
	}
	if info.Clock >= 0 {
		// Start the clock from a defined low level.
		s.Set(info.Clock, logic.Zero(1))
		if err := s.Settle(); err != nil {
			return err
		}
		for i := 0; i < cycles; i++ {
			if err := s.Tick(info.Clock); err != nil {
				return err
			}
		}
	}
	if info.Reset >= 0 {
		v := logic.Ones(1)
		if !info.ActiveLow {
			v = logic.Zero(1)
		}
		s.Set(info.Reset, v)
		if err := s.Settle(); err != nil {
			return err
		}
	}
	return nil
}

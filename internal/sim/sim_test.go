package sim

import (
	"testing"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/logic"
)

func elaborate(t *testing.T, src, top string) *elab.Design {
	t.Helper()
	ast, err := hdl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := elab.Elaborate(ast, top, nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

func newSim(t *testing.T, src, top string) *Simulator {
	t.Helper()
	s, err := New(elaborate(t, src, top))
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	return s
}

func mustPoke(t *testing.T, s *Simulator, name string, v logic.BV) {
	t.Helper()
	if err := s.Poke(name, v); err != nil {
		t.Fatal(err)
	}
}

func peekU(t *testing.T, s *Simulator, name string) uint64 {
	t.Helper()
	v, err := s.Peek(name)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := v.Uint64()
	if !ok {
		t.Fatalf("%s = %v has unknown bits", name, v)
	}
	return u
}

const combSrc = `
module comb (input [7:0] a, input [7:0] b, input sel, output [7:0] y, output [7:0] sum);
  wire [7:0] na;
  assign na = ~a;
  assign y = sel ? na : b;
  assign sum = a + b;
endmodule`

func TestCombinational(t *testing.T) {
	s := newSim(t, combSrc, "comb")
	mustPoke(t, s, "a", logic.FromUint64(8, 0x0F))
	mustPoke(t, s, "b", logic.FromUint64(8, 0x30))
	mustPoke(t, s, "sel", logic.Ones(1))
	if got := peekU(t, s, "y"); got != 0xF0 {
		t.Errorf("y = %#x, want 0xF0", got)
	}
	if got := peekU(t, s, "sum"); got != 0x3F {
		t.Errorf("sum = %#x", got)
	}
	mustPoke(t, s, "sel", logic.Zero(1))
	if got := peekU(t, s, "y"); got != 0x30 {
		t.Errorf("y = %#x, want 0x30", got)
	}
	// X select merges.
	mustPoke(t, s, "sel", logic.X(1))
	v, _ := s.Peek("y")
	if v.IsFullyDefined() {
		t.Errorf("y with X select should have X bits where branches differ: %v", v)
	}
}

const counterSrc = `
module counter (input clk_i, input rst_ni, input en, output reg [7:0] q);
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 8'd0;
    else if (en) q <= q + 8'd1;
  end
endmodule`

func TestSequentialCounter(t *testing.T) {
	s := newSim(t, counterSrc, "counter")
	info := DetectClockReset(s.Design())
	if info.Clock != s.SignalIndex("clk_i") {
		t.Fatalf("clock detected as %d", info.Clock)
	}
	if info.Reset != s.SignalIndex("rst_ni") || !info.ActiveLow {
		t.Fatalf("reset detection wrong: %+v", info)
	}
	if err := s.ApplyReset(info, 2); err != nil {
		t.Fatal(err)
	}
	if got := peekU(t, s, "q"); got != 0 {
		t.Fatalf("after reset q = %d", got)
	}
	mustPoke(t, s, "en", logic.Ones(1))
	for i := 0; i < 5; i++ {
		if err := s.Tick(info.Clock); err != nil {
			t.Fatal(err)
		}
	}
	if got := peekU(t, s, "q"); got != 5 {
		t.Errorf("q = %d, want 5", got)
	}
	mustPoke(t, s, "en", logic.Zero(1))
	_ = s.Tick(info.Clock)
	if got := peekU(t, s, "q"); got != 5 {
		t.Errorf("q moved while disabled: %d", got)
	}
	// Async reset mid-run.
	mustPoke(t, s, "rst_ni", logic.Zero(1))
	if got := peekU(t, s, "q"); got != 0 {
		t.Errorf("async reset did not clear q: %d", got)
	}
}

func TestXAtPowerOn(t *testing.T) {
	s := newSim(t, counterSrc, "counter")
	v, _ := s.Peek("q")
	if v.IsFullyDefined() {
		t.Errorf("register should be X before reset, got %v", v)
	}
}

const swapSrc = `
module swap (input clk, input rst, input [3:0] seed, output reg [3:0] x, output reg [3:0] y);
  always_ff @(posedge clk) begin
    if (rst) begin
      x <= seed;
      y <= seed + 4'd1;
    end else begin
      x <= y;
      y <= x;
    end
  end
endmodule`

func TestNonBlockingSwap(t *testing.T) {
	s := newSim(t, swapSrc, "swap")
	clk := s.SignalIndex("clk")
	mustPoke(t, s, "rst", logic.Ones(1))
	mustPoke(t, s, "seed", logic.FromUint64(4, 3))
	_ = s.Tick(clk)
	mustPoke(t, s, "rst", logic.Zero(1))
	if peekU(t, s, "x") != 3 || peekU(t, s, "y") != 4 {
		t.Fatalf("seed failed: x=%d y=%d", peekU(t, s, "x"), peekU(t, s, "y"))
	}
	_ = s.Tick(clk)
	// Non-blocking semantics: true swap, not shift.
	if peekU(t, s, "x") != 4 || peekU(t, s, "y") != 3 {
		t.Errorf("swap failed: x=%d y=%d", peekU(t, s, "x"), peekU(t, s, "y"))
	}
}

const hierSrc = `
module inv #(parameter W = 4) (input [3:0] a, output [3:0] y);
  assign y = ~a;
endmodule
module top (input [3:0] in, output [3:0] out);
  wire [3:0] mid;
  inv u0 (.a(in), .y(mid));
  inv u1 (.a(mid), .y(out));
endmodule`

func TestHierarchy(t *testing.T) {
	s := newSim(t, hierSrc, "top")
	mustPoke(t, s, "in", logic.FromUint64(4, 0b1010))
	if got := peekU(t, s, "out"); got != 0b1010 {
		t.Errorf("double inverter out = %04b", got)
	}
	if got := peekU(t, s, "u0.y"); got != 0b0101 {
		t.Errorf("u0.y = %04b", got)
	}
}

const memSrc = `
module regfile (input clk, input we, input [3:0] waddr, input [7:0] wdata,
                input [3:0] raddr, output [7:0] rdata);
  reg [7:0] store [0:15];
  assign rdata = store[raddr];
  always_ff @(posedge clk) begin
    if (we) store[waddr] <= wdata;
  end
endmodule`

func TestMemory(t *testing.T) {
	s := newSim(t, memSrc, "regfile")
	clk := s.SignalIndex("clk")
	mustPoke(t, s, "clk", logic.Zero(1))
	mustPoke(t, s, "we", logic.Ones(1))
	mustPoke(t, s, "waddr", logic.FromUint64(4, 7))
	mustPoke(t, s, "wdata", logic.FromUint64(8, 0xAB))
	_ = s.Tick(clk)
	mustPoke(t, s, "we", logic.Zero(1))
	mustPoke(t, s, "raddr", logic.FromUint64(4, 7))
	if got := peekU(t, s, "rdata"); got != 0xAB {
		t.Errorf("rdata = %#x", got)
	}
	// Unwritten word reads X.
	mustPoke(t, s, "raddr", logic.FromUint64(4, 3))
	v, _ := s.Peek("rdata")
	if v.IsFullyDefined() {
		t.Errorf("unwritten word should be X, got %v", v)
	}
}

// The paper's Listing 1 ALU.
const aluSrc = `
module ALU (input nrst, input [15:0] A,
  input [15:0] B, input [3:0] op, output reg [15:0] Out);
  typedef enum logic [2:0] {INIT = 0, ADD = 1,
      SUB = 2, AND_ = 3, OR_ = 4, XOR_ = 5} state_t;
  state_t state;
  logic OPmode;
  always_comb begin : resetLogic
      if (!nrst) state = 0;
      else begin
        state = op[2:0];
        OPmode = op[3];
      end
  end
  always_comb begin : FSM
      if (OPmode) begin
          Out[15:8] = 0;
          case (state)
              INIT: Out[7:0] = 0;
              ADD:  Out[7:0] = A[7:0] + B[7:0];
              SUB:  Out[7:0] = A[7:0] - B[7:0];
              default: Out = 0;
          endcase
      end else begin
          case (state)
              INIT: Out = 0;
              ADD:  Out = A + B;
              SUB:  Out = A - B;
              default: Out = 0;
          endcase
      end
  end
endmodule`

func TestALU(t *testing.T) {
	s := newSim(t, aluSrc, "ALU")
	mustPoke(t, s, "nrst", logic.Ones(1))
	mustPoke(t, s, "A", logic.FromUint64(16, 300))
	mustPoke(t, s, "B", logic.FromUint64(16, 100))
	// 16-bit ADD (OPmode=0, state=ADD=1): op = 0001
	mustPoke(t, s, "op", logic.FromUint64(4, 0b0001))
	if got := peekU(t, s, "Out"); got != 400 {
		t.Errorf("16-bit add = %d", got)
	}
	// 8-bit ADD (OPmode=1): op = 1001 -> low bytes only: 300&255=44, 100 -> 144
	mustPoke(t, s, "op", logic.FromUint64(4, 0b1001))
	if got := peekU(t, s, "Out"); got != 144 {
		t.Errorf("8-bit add = %d", got)
	}
	// Reset drives state to INIT.
	mustPoke(t, s, "nrst", logic.Zero(1))
	if got := peekU(t, s, "state"); got != 0 {
		t.Errorf("state after reset = %d", got)
	}
}

func TestBranchTracing(t *testing.T) {
	s := newSim(t, aluSrc, "ALU")
	var events [][2]int
	s.SetTracer(tracerFunc(func(id, arm int) { events = append(events, [2]int{id, arm}) }))
	mustPoke(t, s, "nrst", logic.Ones(1))
	mustPoke(t, s, "op", logic.FromUint64(4, 0b0001))
	if len(events) == 0 {
		t.Fatal("no branch events traced")
	}
	if s.Design().Branches < 4 {
		t.Errorf("expected >=4 instrumented branches, got %d", s.Design().Branches)
	}
}

type tracerFunc func(id, arm int)

func (f tracerFunc) Branch(id, arm int) { f(id, arm) }

func TestSnapshotRestore(t *testing.T) {
	s := newSim(t, counterSrc, "counter")
	info := DetectClockReset(s.Design())
	if err := s.ApplyReset(info, 1); err != nil {
		t.Fatal(err)
	}
	mustPoke(t, s, "en", logic.Ones(1))
	for i := 0; i < 3; i++ {
		_ = s.Tick(info.Clock)
	}
	snap := s.Snapshot()
	for i := 0; i < 4; i++ {
		_ = s.Tick(info.Clock)
	}
	if got := peekU(t, s, "q"); got != 7 {
		t.Fatalf("q = %d", got)
	}
	s.Restore(snap)
	if got := peekU(t, s, "q"); got != 3 {
		t.Errorf("restored q = %d, want 3", got)
	}
	if s.Cycle() != snap.Cycle {
		t.Errorf("cycle not restored")
	}
	// Re-running from the snapshot is deterministic.
	for i := 0; i < 4; i++ {
		_ = s.Tick(info.Clock)
	}
	if got := peekU(t, s, "q"); got != 7 {
		t.Errorf("replay q = %d, want 7", got)
	}
}

func TestCycleListener(t *testing.T) {
	s := newSim(t, counterSrc, "counter")
	n := 0
	s.OnCycle(func(DUV) { n++ })
	info := DetectClockReset(s.Design())
	_ = s.ApplyReset(info, 2)
	for i := 0; i < 3; i++ {
		_ = s.Tick(info.Clock)
	}
	if n != 5 { // 2 reset cycles + 3 ticks
		t.Errorf("listener fired %d times, want 5", n)
	}
}

const loopSrc = `
module osc (input a, output w1);
  wire w2;
  assign w1 = ~w2 | a;
  assign w2 = w1 & ~a;
endmodule`

func TestCombLoopDetected(t *testing.T) {
	ast, err := hdl.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(ast, "osc", nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		return // loop detected at init: acceptable
	}
	if err := s.Poke("a", logic.Zero(1)); err == nil {
		// The loop may stabilize for some inputs; force the unstable one.
		err = s.Poke("a", logic.Ones(1))
		_ = err
	}
}

const initSrc = `
module ini (input clk, output [3:0] v);
  reg [3:0] r = 4'd9;
  assign v = r;
endmodule`

func TestDeclarationInitializer(t *testing.T) {
	s := newSim(t, initSrc, "ini")
	if got := peekU(t, s, "v"); got != 9 {
		t.Errorf("initialized reg = %d", got)
	}
}

func TestForLoopUnrolled(t *testing.T) {
	src := `
module rev (input [7:0] d, output reg [7:0] q);
  always_comb begin
    for (int i = 0; i < 8; i++) begin
      q[i] = d[7 - i];
    end
  end
endmodule`
	s := newSim(t, src, "rev")
	mustPoke(t, s, "d", logic.MustFromString("11010010"))
	v, _ := s.Peek("q")
	if v.BitString() != "01001011" {
		t.Errorf("reversed = %s", v.BitString())
	}
}

func TestParameterOverride(t *testing.T) {
	src := `
module adder #(parameter W = 4, parameter STEP = 1) (input [7:0] a, output [7:0] y);
  assign y = a + STEP;
endmodule
module wrap (input [7:0] a, output [7:0] y);
  adder #(.STEP(5)) u (.a(a), .y(y));
endmodule`
	s := newSim(t, src, "wrap")
	mustPoke(t, s, "a", logic.FromUint64(8, 10))
	if got := peekU(t, s, "y"); got != 15 {
		t.Errorf("y = %d", got)
	}
	// And elaborating the child directly uses the default.
	s2 := newSim(t, src, "adder")
	mustPoke(t, s2, "a", logic.FromUint64(8, 10))
	if got := peekU(t, s2, "y"); got != 11 {
		t.Errorf("default y = %d", got)
	}
}

func TestElabErrors(t *testing.T) {
	bad := []struct{ src, top string }{
		{`module m (input a, output y); assign y = nothere; endmodule`, "m"},
		{`module m (input a, output y); assign y = a; endmodule`, "missing"},
		{`module m (input a, output y); sub u (.x(a)); endmodule`, "m"},
		{`module m (input [3:0] a, output y); assign y = a[9:2]; endmodule`, "m"},
	}
	for _, c := range bad {
		ast, err := hdl.Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if _, err := elab.Elaborate(ast, c.top, nil); err == nil {
			t.Errorf("expected elaboration error for %q", c.src)
		}
	}
}

func TestConcatTarget(t *testing.T) {
	src := `
module split (input [7:0] d, output [3:0] hi, output [3:0] lo);
  always_comb begin
    {hi, lo} = d;
  end
endmodule`
	s := newSim(t, src, "split")
	mustPoke(t, s, "d", logic.FromUint64(8, 0xA5))
	if peekU(t, s, "hi") != 0xA || peekU(t, s, "lo") != 0x5 {
		t.Errorf("hi=%x lo=%x", peekU(t, s, "hi"), peekU(t, s, "lo"))
	}
}

const multiClockSrc = `
module mc (input clk_a, input clk_b, input rst_ni,
           output reg [3:0] ca, output reg [3:0] cb);
  always_ff @(posedge clk_a or negedge rst_ni) begin
    if (!rst_ni) ca <= 4'd0;
    else ca <= ca + 4'd1;
  end
  always_ff @(posedge clk_b or negedge rst_ni) begin
    if (!rst_ni) cb <= 4'd0;
    else cb <= cb + 4'd1;
  end
endmodule`

func TestMultipleClockDomains(t *testing.T) {
	s := newSim(t, multiClockSrc, "mc")
	clkA := s.SignalIndex("clk_a")
	clkB := s.SignalIndex("clk_b")
	mustPoke(t, s, "rst_ni", logic.Zero(1))
	mustPoke(t, s, "rst_ni", logic.Ones(1))
	mustPoke(t, s, "clk_a", logic.Zero(1))
	mustPoke(t, s, "clk_b", logic.Zero(1))
	for i := 0; i < 6; i++ {
		_ = s.Tick(clkA)
	}
	for i := 0; i < 2; i++ {
		_ = s.Tick(clkB)
	}
	if got := peekU(t, s, "ca"); got != 6 {
		t.Errorf("ca = %d", got)
	}
	if got := peekU(t, s, "cb"); got != 2 {
		t.Errorf("cb = %d (domains must be independent)", got)
	}
}

func TestClockTreeAliasResolution(t *testing.T) {
	// Child clocks resolve through the connection chain to the root.
	src := `
module leaf (input clk_i, input rst_ni, output reg [3:0] q);
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule
module root (input clk_i, input rst_ni, output [3:0] a, output [3:0] b);
  leaf u0 (.clk_i(clk_i), .rst_ni(rst_ni), .q(a));
  leaf u1 (.clk_i(clk_i), .rst_ni(rst_ni), .q(b));
endmodule`
	s := newSim(t, src, "root")
	info := DetectClockReset(s.Design())
	if s.Design().Signals[info.Clock].Name != "clk_i" {
		t.Fatalf("clock resolved to %s", s.Design().Signals[info.Clock].Name)
	}
	if s.Design().Signals[info.Reset].Name != "rst_ni" {
		t.Fatalf("reset resolved to %s", s.Design().Signals[info.Reset].Name)
	}
	if err := s.ApplyReset(info, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_ = s.Tick(info.Clock)
	}
	// Both leaves tick from the single root clock.
	if peekU(t, s, "a") != 3 || peekU(t, s, "b") != 3 {
		t.Errorf("a=%d b=%d, want 3/3", peekU(t, s, "a"), peekU(t, s, "b"))
	}
}

func TestPokePeekErrors(t *testing.T) {
	s := newSim(t, counterSrc, "counter")
	if err := s.Poke("missing", logic.Zero(1)); err == nil {
		t.Error("poke of unknown signal must error")
	}
	if _, err := s.Peek("missing"); err == nil {
		t.Error("peek of unknown signal must error")
	}
	if s.SignalIndex("missing") != -1 {
		t.Error("unknown index must be -1")
	}
}

func TestAdvanceCycleFiresListeners(t *testing.T) {
	s := newSim(t, combSrc, "comb")
	n := 0
	s.OnCycle(func(DUV) { n++ })
	s.AdvanceCycle()
	s.AdvanceCycle()
	if n != 2 || s.Cycle() != 2 {
		t.Errorf("n=%d cycle=%d", n, s.Cycle())
	}
}

func TestGetMemOutOfRange(t *testing.T) {
	s := newSim(t, memSrc, "regfile")
	if v := s.GetMem(0, 9999); !v.HasUnknown() {
		t.Error("out-of-range memory read must be X")
	}
}

func TestResizeOnApply(t *testing.T) {
	// Writing a wrong-width value through Set resizes to the signal.
	s := newSim(t, combSrc, "comb")
	idx := s.SignalIndex("a")
	s.Set(idx, logic.FromUint64(16, 0x1FF))
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := peekU(t, s, "a"); got != 0xFF {
		t.Errorf("a = %#x, want truncated 0xFF", got)
	}
}

// --- four-state truth tables ---------------------------------------
//
// These pin the 0/1/X/Z propagation rules for the core operators as
// observed through the simulator, edge by edge. The compiled backend
// (internal/simc) reimplements every one of these kernels on packed
// word planes, so any drift in the tables here is exactly the kind of
// bug the differential harness must catch — keeping the interpreter's
// behaviour pinned makes the reference itself trustworthy.

const gatesSrc = `
module gates (input a, input b, input sel,
              output and_o, output or_o, output xor_o,
              output mux_o, output eq_o, output lt_o);
  assign and_o = a & b;
  assign or_o = a | b;
  assign xor_o = a ^ b;
  assign mux_o = sel ? a : b;
  assign eq_o = a == b;
  assign lt_o = a < b;
endmodule`

// bit4 maps a table character to a 1-bit four-state value.
func bit4(t *testing.T, c byte) logic.BV {
	t.Helper()
	switch c {
	case '0':
		return logic.Zero(1)
	case '1':
		return logic.Ones(1)
	case 'x':
		return logic.X(1)
	case 'z':
		return logic.Z(1)
	}
	t.Fatalf("bad table bit %q", c)
	return logic.BV{}
}

func TestFourStateTruthTables(t *testing.T) {
	s := newSim(t, gatesSrc, "gates")
	const states = "01xz"
	// Rows are indexed [a][b] in state order 0,1,x,z. A Z input to a
	// gate behaves as unknown: it can never dominate, so it
	// contaminates exactly like X. 0 dominates AND, 1 dominates OR,
	// XOR and the comparisons contaminate on any unknown operand.
	tables := []struct {
		out  string
		want [4]string
	}{
		{"and_o", [4]string{"0000", "01xx", "0xxx", "0xxx"}},
		{"or_o", [4]string{"01xx", "1111", "x1xx", "x1xx"}},
		{"xor_o", [4]string{"01xx", "10xx", "xxxx", "xxxx"}},
		{"eq_o", [4]string{"10xx", "01xx", "xxxx", "xxxx"}},
		{"lt_o", [4]string{"01xx", "00xx", "xxxx", "xxxx"}},
	}
	for ai := 0; ai < len(states); ai++ {
		for bi := 0; bi < len(states); bi++ {
			ac, bc := states[ai], states[bi]
			mustPoke(t, s, "a", bit4(t, ac))
			mustPoke(t, s, "b", bit4(t, bc))
			for _, tb := range tables {
				got, err := s.Peek(tb.out)
				if err != nil {
					t.Fatal(err)
				}
				want := bit4(t, tb.want[ai][bi])
				if !got.Eq4(want) {
					t.Errorf("%s(a=%c, b=%c) = %s, want %s", tb.out, ac, bc, got, want)
				}
			}
		}
	}
}

func TestFourStateMuxTable(t *testing.T) {
	s := newSim(t, gatesSrc, "gates")
	const states = "01xz"
	for si := 0; si < len(states); si++ {
		for ai := 0; ai < len(states); ai++ {
			for bi := 0; bi < len(states); bi++ {
				sc, ac, bc := states[si], states[ai], states[bi]
				mustPoke(t, s, "sel", bit4(t, sc))
				mustPoke(t, s, "a", bit4(t, ac))
				mustPoke(t, s, "b", bit4(t, bc))
				var want logic.BV
				switch sc {
				case '1':
					// A known select passes the branch through
					// verbatim — including Z.
					want = bit4(t, ac)
				case '0':
					want = bit4(t, bc)
				default:
					// Unknown select merges the branches: a bit
					// survives only when both sides agree on a known
					// value; disagreeing or Z/X bits collapse to X.
					if ac == bc && (ac == '0' || ac == '1') {
						want = bit4(t, ac)
					} else {
						want = logic.X(1)
					}
				}
				got, err := s.Peek("mux_o")
				if err != nil {
					t.Fatal(err)
				}
				if !got.Eq4(want) {
					t.Errorf("mux(sel=%c, a=%c, b=%c) = %s, want %s", sc, ac, bc, got, want)
				}
			}
		}
	}
}

// Package sim is an event-driven four-state RTL simulator over the
// elaborated design IR. It supports delta-cycle combinational settling,
// clocked processes with asynchronous set/reset edges, non-blocking
// assignment semantics, clock/reset tree detection, cycle listeners (for
// properties and VCD dumping), branch tracing (for coverage), and cheap
// state snapshots used by SymbFuzz's checkpoint mechanism (§4.5).
package sim

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/elab"
	"repro/internal/logic"
)

// ErrCombLoop is returned when combinational settling does not converge.
var ErrCombLoop = errors.New("sim: combinational loop did not settle")

// Tracer receives branch-arm events; re-exported so callers don't need
// to import elab.
type Tracer = elab.Tracer

// CycleListener is called after each completed clock cycle. It
// receives the DUV interface rather than the concrete simulator so the
// same listeners (coverage sampling, property checking, VCD dumping)
// work unchanged against the compiled backend.
type CycleListener func(s DUV)

// Simulator executes an elaborated design.
type Simulator struct {
	d    *elab.Design
	vals []logic.BV
	mems [][]logic.BV

	// sensitivity maps
	combBySig [][]int // signal index -> comb process indices
	combByMem [][]int // memory index -> comb process indices
	seqBySig  [][]int // signal index -> seq process indices

	queued    []bool // comb process queued
	queue     []int
	pendEdges []pendingEdge
	nba       []nbaEntry
	nbaMem    []nbaMemEntry

	cycle   uint64
	tracer  Tracer
	onCycle []CycleListener

	// scratch for edge detection
	inProcess bool

	// profiling (nil/zero when off): per-process eval counts, plus
	// sampled eval wall time through an injected clock — this package
	// never reads the clock itself, keeping it pure (fuzzvet timenow).
	profEvals   []uint64
	profClock   func() int64
	profEvery   uint64
	profTick    uint64
	profNS      []int64
	profSamples []uint64
}

type pendingEdge struct{ proc int }

type nbaEntry struct {
	sig int
	val logic.BV
}

type nbaMemEntry struct {
	mem  int
	addr uint64
	val  logic.BV
}

// New creates a simulator with every signal and memory word unknown
// ('X'), then settles the combinational logic once.
func New(d *elab.Design) (*Simulator, error) {
	s := &Simulator{
		d:         d,
		vals:      make([]logic.BV, len(d.Signals)),
		mems:      make([][]logic.BV, len(d.Memories)),
		combBySig: make([][]int, len(d.Signals)),
		combByMem: make([][]int, len(d.Memories)),
		seqBySig:  make([][]int, len(d.Signals)),
		queued:    make([]bool, len(d.Procs)),
	}
	for i, sig := range d.Signals {
		if sig.Init != nil {
			s.vals[i] = *sig.Init
		} else {
			s.vals[i] = logic.X(sig.Width)
		}
	}
	for i, m := range d.Memories {
		words := make([]logic.BV, m.Depth)
		for j := range words {
			words[j] = logic.X(m.Width)
		}
		s.mems[i] = words
	}
	for pi, p := range d.Procs {
		switch p.Kind {
		case elab.ProcComb:
			// always_comb semantics: the block is sensitive to what it
			// reads EXCLUDING what it also writes (self-read-modify
			// patterns like "x = 0; x[i] = ..." must not retrigger).
			written := map[int]bool{}
			for _, w := range p.Writes {
				written[w] = true
			}
			for _, r := range p.Reads {
				if written[r] {
					continue
				}
				s.combBySig[r] = append(s.combBySig[r], pi)
			}
			for _, m := range p.MemReads {
				s.combByMem[m] = append(s.combByMem[m], pi)
			}
		case elab.ProcSeq:
			for _, e := range p.Edges {
				s.seqBySig[e.Signal] = append(s.seqBySig[e.Signal], pi)
			}
		}
	}
	// Initial settle: evaluate every comb process once.
	for pi, p := range d.Procs {
		if p.Kind == elab.ProcComb {
			s.enqueue(pi)
		}
	}
	if err := s.Settle(); err != nil {
		return nil, err
	}
	return s, nil
}

// Design returns the elaborated design under simulation.
func (s *Simulator) Design() *elab.Design { return s.d }

// EnableProfile turns on per-process evaluation counting. clock (may
// be nil) supplies monotonic nanoseconds for sampled eval timing — it
// is injected by the caller so the simulator itself stays free of
// wall-clock reads; every sampleEvery-th process evaluation is timed.
func (s *Simulator) EnableProfile(clock func() int64, sampleEvery uint64) {
	s.profEvals = make([]uint64, len(s.d.Procs))
	s.profNS = make([]int64, len(s.d.Procs))
	s.profSamples = make([]uint64, len(s.d.Procs))
	s.profClock = clock
	if sampleEvery == 0 {
		sampleEvery = 64
	}
	s.profEvery = sampleEvery
}

// ProfileCounts returns the per-process profile: total body
// executions, sampled-eval wall nanoseconds, and how many evals were
// sampled. All three are indexed by process; nil when profiling is off.
func (s *Simulator) ProfileCounts() (evals []uint64, sampledNS []int64, sampled []uint64) {
	return s.profEvals, s.profNS, s.profSamples
}

// execProc runs one process body, attributing the eval to the profile
// when enabled. The disabled cost is a single nil check.
func (s *Simulator) execProc(pi int) {
	body := s.d.Procs[pi].Body
	if s.profEvals != nil {
		s.profEvals[pi]++
		s.profTick++
		if s.profClock != nil && s.profTick%s.profEvery == 0 {
			t0 := s.profClock()
			for _, st := range body {
				st.Exec(s)
			}
			s.profNS[pi] += s.profClock() - t0
			s.profSamples[pi]++
			return
		}
	}
	for _, st := range body {
		st.Exec(s)
	}
}

// Cycle returns the number of completed clock cycles.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// SetTracer installs the branch-event tracer (coverage monitor).
func (s *Simulator) SetTracer(t Tracer) { s.tracer = t }

// OnCycle registers a listener invoked after every completed cycle.
func (s *Simulator) OnCycle(fn CycleListener) { s.onCycle = append(s.onCycle, fn) }

// ---- elab.Sink implementation ----

// Get returns the current value of a signal.
func (s *Simulator) Get(sig int) logic.BV { return s.vals[sig] }

// GetMem returns a memory word (X for out-of-range).
func (s *Simulator) GetMem(mem int, addr uint64) logic.BV {
	words := s.mems[mem]
	if addr >= uint64(len(words)) {
		return logic.X(s.d.Memories[mem].Width)
	}
	return words[addr]
}

// Set performs a blocking write, scheduling dependent processes.
func (s *Simulator) Set(sig int, v logic.BV) { s.apply(sig, v) }

// SetNB queues a non-blocking write committed at the end of the current
// edge evaluation.
func (s *Simulator) SetNB(sig int, v logic.BV) {
	s.nba = append(s.nba, nbaEntry{sig: sig, val: v})
}

// SetMem performs a blocking memory write.
func (s *Simulator) SetMem(mem int, addr uint64, v logic.BV) {
	words := s.mems[mem]
	if addr >= uint64(len(words)) {
		return
	}
	if words[addr].Eq4(v) {
		return
	}
	words[addr] = v
	for _, pi := range s.combByMem[mem] {
		s.enqueue(pi)
	}
}

// SetMemNB queues a non-blocking memory write.
func (s *Simulator) SetMemNB(mem int, addr uint64, v logic.BV) {
	s.nbaMem = append(s.nbaMem, nbaMemEntry{mem: mem, addr: addr, val: v})
}

// Branch forwards a branch event to the installed tracer.
func (s *Simulator) Branch(id, arm int) {
	if s.tracer != nil {
		s.tracer.Branch(id, arm)
	}
}

// ---- core engine ----

func (s *Simulator) enqueue(pi int) {
	if !s.queued[pi] {
		s.queued[pi] = true
		s.queue = append(s.queue, pi)
	}
}

// apply writes a signal value, detecting clock edges and scheduling
// sensitive processes.
func (s *Simulator) apply(sig int, v logic.BV) {
	old := s.vals[sig]
	v = v.Resize(old.Width())
	if old.Eq4(v) {
		return
	}
	s.vals[sig] = v
	for _, pi := range s.combBySig[sig] {
		s.enqueue(pi)
	}
	if len(s.seqBySig[sig]) > 0 {
		oldBit, newBit := old.Bit(0), v.Bit(0)
		pos := oldBit != logic.L1 && newBit == logic.L1
		neg := oldBit != logic.L0 && newBit == logic.L0
		if pos || neg {
			for _, pi := range s.seqBySig[sig] {
				for _, e := range s.d.Procs[pi].Edges {
					if e.Signal == sig && ((e.Posedge && pos) || (!e.Posedge && neg)) {
						s.pendEdges = append(s.pendEdges, pendingEdge{proc: pi})
						break
					}
				}
			}
		}
	}
}

// Settle runs the event loop to quiescence: combinational fixpoint,
// then triggered sequential processes with non-blocking commit, repeated
// until nothing is pending.
func (s *Simulator) Settle() error {
	limit := 64 * (len(s.d.Procs) + 16)
	steps := 0
	for {
		// Combinational fixpoint.
		for len(s.queue) > 0 {
			pi := s.queue[0]
			s.queue = s.queue[1:]
			s.queued[pi] = false
			s.execProc(pi)
			steps++
			if steps > limit*16 {
				return fmt.Errorf("%w (process %s)", ErrCombLoop, s.d.Procs[pi].Name)
			}
		}
		if len(s.pendEdges) == 0 {
			return nil
		}
		// Fire triggered sequential processes: evaluate all bodies
		// (collecting NBA writes), then commit the writes.
		edges := s.pendEdges
		s.pendEdges = nil
		seen := map[int]bool{}
		for _, e := range edges {
			if seen[e.proc] {
				continue
			}
			seen[e.proc] = true
			s.execProc(e.proc)
		}
		nba := s.nba
		s.nba = s.nba[:0]
		for _, w := range nba {
			s.apply(w.sig, w.val)
		}
		nbaMem := s.nbaMem
		s.nbaMem = s.nbaMem[:0]
		for _, w := range nbaMem {
			s.SetMem(w.mem, w.addr, w.val)
		}
		steps++
		if steps > limit*16 {
			return ErrCombLoop
		}
	}
}

// ---- user-facing drive API ----

// SignalIndex resolves a hierarchical signal name; -1 if unknown.
func (s *Simulator) SignalIndex(name string) int {
	if sig, ok := s.d.ByName[name]; ok {
		return sig.Index
	}
	return -1
}

// Poke sets a signal by name and settles. Intended for inputs.
func (s *Simulator) Poke(name string, v logic.BV) error {
	idx := s.SignalIndex(name)
	if idx < 0 {
		return fmt.Errorf("sim: unknown signal %q", name)
	}
	s.apply(idx, v)
	return s.Settle()
}

// PokeIdx sets a signal by index and settles.
func (s *Simulator) PokeIdx(idx int, v logic.BV) error {
	s.apply(idx, v)
	return s.Settle()
}

// Peek reads a signal by name.
func (s *Simulator) Peek(name string) (logic.BV, error) {
	idx := s.SignalIndex(name)
	if idx < 0 {
		return logic.BV{}, fmt.Errorf("sim: unknown signal %q", name)
	}
	return s.vals[idx], nil
}

// AdvanceCycle increments the cycle counter and fires cycle listeners
// without toggling a clock; used for purely combinational DUVs where
// each applied stimulus vector counts as one evaluation cycle.
func (s *Simulator) AdvanceCycle() {
	s.cycle++
	for _, fn := range s.onCycle {
		fn(s)
	}
}

// Tick drives one full clock cycle on the given clock signal index:
// rising edge, settle, falling edge, settle, then fires cycle listeners.
func (s *Simulator) Tick(clk int) error {
	s.apply(clk, logic.Ones(1))
	if err := s.Settle(); err != nil {
		return err
	}
	s.apply(clk, logic.Zero(1))
	if err := s.Settle(); err != nil {
		return err
	}
	s.cycle++
	for _, fn := range s.onCycle {
		fn(s)
	}
	return nil
}

// ---- clock / reset tree ----

// ResetInfo describes the detected clock and reset tree of a design.
type ResetInfo struct {
	Clock     int // clock signal index (-1 if none)
	Reset     int // reset signal index (-1 if none)
	ActiveLow bool
	// Tree lists every signal participating in sequential sensitivity
	// lists, i.e. the reset distribution tree of §4.3.
	Tree []int
}

// aliasMap maps signals driven by pure pass-through assignments (port
// connections, buffers) to their source signal, so clock and reset pins
// of child instances resolve to the top-level distribution roots.
func aliasMap(d *elab.Design) map[int]int {
	alias := map[int]int{}
	for _, p := range d.Procs {
		if p.Kind != elab.ProcComb || len(p.Body) != 1 {
			continue
		}
		sa, ok := p.Body[0].(elab.SAssign)
		if !ok {
			continue
		}
		lhs, ok := sa.LHS.(elab.TSig)
		if !ok {
			continue
		}
		rhs := sa.RHS
		if z, isZ := rhs.(elab.ZExt); isZ {
			rhs = z.X
		}
		if sig, isSig := rhs.(elab.Sig); isSig {
			alias[lhs.Idx] = sig.Idx
		}
	}
	return alias
}

// resolveAlias follows pass-through chains to the distribution root.
func resolveAlias(alias map[int]int, sig int) int {
	for i := 0; i < 64; i++ {
		src, ok := alias[sig]
		if !ok || src == sig {
			return sig
		}
		sig = src
	}
	return sig
}

// DetectClockReset inspects sequential sensitivity lists and port names
// to find the primary clock and reset, building the reset tree the paper
// extracts for deterministic test execution. Child-instance clock pins
// resolve through their connection chain to the top-level root, so the
// whole tree toggles together.
func DetectClockReset(d *elab.Design) ResetInfo {
	info := ResetInfo{Clock: -1, Reset: -1}
	alias := aliasMap(d)
	posCount := map[int]int{}
	negCount := map[int]int{}
	inTree := map[int]bool{}
	for _, p := range d.Procs {
		if p.Kind != elab.ProcSeq {
			continue
		}
		for _, e := range p.Edges {
			root := resolveAlias(alias, e.Signal)
			inTree[root] = true
			if e.Posedge {
				posCount[root]++
			} else {
				negCount[root]++
			}
		}
	}
	for idx := range inTree {
		info.Tree = append(info.Tree, idx)
	}
	looksReset := func(name string) bool {
		n := strings.ToLower(name)
		return strings.Contains(n, "rst") || strings.Contains(n, "reset")
	}
	best := -1
	for idx, c := range posCount {
		if looksReset(d.Signals[idx].Name) {
			continue
		}
		if best == -1 || c > posCount[best] {
			best = idx
		}
	}
	info.Clock = best
	// Active-low reset: most common negedge signal, or a posedge signal
	// with a reset-like name.
	bestNeg := -1
	for idx, c := range negCount {
		if bestNeg == -1 || c > negCount[bestNeg] {
			bestNeg = idx
		}
	}
	if bestNeg >= 0 {
		info.Reset = bestNeg
		info.ActiveLow = true
		return info
	}
	for idx := range posCount {
		if looksReset(d.Signals[idx].Name) {
			info.Reset = idx
			info.ActiveLow = false
			return info
		}
	}
	// Fall back to a reset-named input port (synchronous reset designs).
	for _, sig := range d.InputSignals() {
		if looksReset(sig.Name) {
			info.Reset = sig.Index
			info.ActiveLow = strings.Contains(strings.ToLower(sig.Name), "n")
			return info
		}
	}
	return info
}

// ApplyReset asserts the detected reset for the given number of cycles
// and deasserts it, leaving the design in its deterministic start state.
func (s *Simulator) ApplyReset(info ResetInfo, cycles int) error {
	return RunReset(s, info, cycles)
}

// ---- snapshots (checkpoint substrate, §4.5) ----

// Snapshot is a deep copy of all architectural state.
type Snapshot struct {
	Vals  []logic.BV
	Mems  [][]logic.BV
	Cycle uint64
}

// Snapshot captures the current state. BV values are immutable, so only
// the slices are copied.
func (s *Simulator) Snapshot() *Snapshot {
	snap := &Snapshot{
		Vals:  make([]logic.BV, len(s.vals)),
		Mems:  make([][]logic.BV, len(s.mems)),
		Cycle: s.cycle,
	}
	copy(snap.Vals, s.vals)
	for i, m := range s.mems {
		snap.Mems[i] = make([]logic.BV, len(m))
		copy(snap.Mems[i], m)
	}
	return snap
}

// Bytes approximates the snapshot's architectural footprint: two
// 64-bit planes per bit-vector word plus slice headers. The engine
// accounts checkpoint memory cost with it (the §5 snapshot-vs-replay
// ablation's space axis).
func (snap *Snapshot) Bytes() int64 {
	const header = 48 // BV: width int + two slice headers
	total := int64(0)
	for _, v := range snap.Vals {
		total += header + 2*8*int64((v.Width()+63)/64)
	}
	for _, m := range snap.Mems {
		for _, v := range m {
			total += header + 2*8*int64((v.Width()+63)/64)
		}
	}
	return total
}

// Restore rewinds the simulator to a snapshot. Pending events are
// discarded; the state is exactly as captured.
func (s *Simulator) Restore(snap *Snapshot) {
	copy(s.vals, snap.Vals)
	for i := range s.mems {
		copy(s.mems[i], snap.Mems[i])
	}
	s.cycle = snap.Cycle
	s.queue = s.queue[:0]
	for i := range s.queued {
		s.queued[i] = false
	}
	s.pendEdges = s.pendEdges[:0]
	s.nba = s.nba[:0]
	s.nbaMem = s.nbaMem[:0]
}

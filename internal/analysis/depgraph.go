package analysis

import (
	"sort"

	"repro/internal/elab"
)

// DepGraph is the signal-level dependency graph of a design: for each
// written signal, the signals its driving expressions read (including
// the path conditions guarding the write). Combinational and
// sequential dependencies are kept apart so cones can be cut at
// registers per unrolled step, and the combinational half is levelized
// into an evaluation order — the scheduling groundwork for a compiled
// simulation backend.
type DepGraph struct {
	d *elab.Design
	// Comb maps a combinationally written signal to the signals its
	// value depends on within the same cycle (sorted, deduplicated).
	Comb map[int][]int
	// Next maps a sequentially written signal to the signals its
	// next-state function reads (sorted, deduplicated).
	Next map[int][]int
	// Level is the combinational settle depth per signal: inputs and
	// registers are level 0; a comb signal is one above its deepest
	// dependency. Signals on combinational cycles share the maximum
	// level reached when the cycle was cut.
	Level map[int]int
	// Order lists the combinationally written signals in levelized
	// evaluation order (by level, then index).
	Order []int
}

// BuildDepGraph computes the dependency graph of an elaborated design.
func BuildDepGraph(d *elab.Design) *DepGraph {
	g := &DepGraph{
		d:     d,
		Comb:  map[int][]int{},
		Next:  map[int][]int{},
		Level: map[int]int{},
	}
	comb := map[int]map[int]bool{}
	next := map[int]map[int]bool{}
	for _, p := range d.Procs {
		into := comb
		if p.Kind == elab.ProcSeq {
			into = next
		}
		collectStmtDeps(p.Body, nil, into)
	}
	g.Comb = sortedDeps(comb)
	g.Next = sortedDeps(next)
	g.levelize()
	return g
}

func sortedDeps(m map[int]map[int]bool) map[int][]int {
	out := make(map[int][]int, len(m))
	for sig, deps := range m {
		l := make([]int, 0, len(deps))
		for d := range deps {
			l = append(l, d)
		}
		sort.Ints(l)
		out[sig] = l
	}
	return out
}

// collectStmtDeps walks statements accumulating per-target read sets;
// conds carries the signals read by enclosing branch conditions, which
// every guarded write also depends on.
func collectStmtDeps(stmts []elab.Stmt, conds []int, into map[int]map[int]bool) {
	for _, st := range stmts {
		switch s := st.(type) {
		case elab.SAssign:
			reads := append(exprReads(s.RHS, nil), conds...)
			reads = append(reads, targetReads(s.LHS, nil)...)
			addTargetDeps(s.LHS, reads, into)
		case elab.SIf:
			c := append(exprReads(s.Cond, nil), conds...)
			collectStmtDeps(s.Then, c, into)
			collectStmtDeps(s.Else, c, into)
		case elab.SCase:
			c := append(exprReads(s.Subject, nil), conds...)
			for _, item := range s.Items {
				for _, m := range item.Matches {
					c = exprReads(m, c)
				}
			}
			for _, item := range s.Items {
				collectStmtDeps(item.Body, c, into)
			}
			collectStmtDeps(s.Default, c, into)
		}
	}
}

// addTargetDeps records reads against every root signal the target
// writes; memory writes have no signal-level destination.
func addTargetDeps(t elab.Target, reads []int, into map[int]map[int]bool) {
	switch tg := t.(type) {
	case elab.TCat:
		for _, p := range tg.Parts {
			addTargetDeps(p, reads, into)
		}
		return
	case elab.TMem:
		return
	}
	sig := t.SignalIdx()
	if sig < 0 {
		return
	}
	set := into[sig]
	if set == nil {
		set = map[int]bool{}
		into[sig] = set
	}
	for _, r := range reads {
		set[r] = true
	}
}

// targetReads collects signals a write destination itself reads: a
// partial assignment is a read-modify-write of the root signal, and
// dynamic bit/address selects read their index expressions.
func targetReads(t elab.Target, acc []int) []int {
	switch tg := t.(type) {
	case elab.TRange:
		acc = append(acc, tg.Idx)
	case elab.TBit:
		acc = append(acc, tg.Idx)
		acc = exprReads(tg.BitE, acc)
	case elab.TCat:
		for _, p := range tg.Parts {
			acc = targetReads(p, acc)
		}
	case elab.TMem:
		acc = exprReads(tg.Addr, acc)
	}
	return acc
}

// exprReads collects the signal indices an expression reads.
func exprReads(e elab.Expr, acc []int) []int {
	switch n := e.(type) {
	case elab.Const:
	case elab.Sig:
		acc = append(acc, n.Idx)
	case elab.Bin:
		acc = exprReads(n.X, acc)
		acc = exprReads(n.Y, acc)
	case elab.Un:
		acc = exprReads(n.X, acc)
	case elab.Cond:
		acc = exprReads(n.C, acc)
		acc = exprReads(n.T, acc)
		acc = exprReads(n.F, acc)
	case elab.CatE:
		for _, p := range n.Parts {
			acc = exprReads(p, acc)
		}
	case elab.Slice:
		acc = exprReads(n.X, acc)
	case elab.BitSel:
		acc = exprReads(n.X, acc)
		acc = exprReads(n.Idx, acc)
	case elab.DynSlice:
		acc = exprReads(n.X, acc)
		acc = exprReads(n.Start, acc)
	case elab.ZExt:
		acc = exprReads(n.X, acc)
	case elab.MemRead:
		acc = exprReads(n.Addr, acc)
	}
	return acc
}

// levelize assigns combinational settle depths by longest path through
// the comb subgraph, visiting signals in index order so cycle cuts are
// deterministic.
func (g *DepGraph) levelize() {
	const inProgress = -1
	sigs := make([]int, 0, len(g.Comb))
	for s := range g.Comb {
		sigs = append(sigs, s)
	}
	sort.Ints(sigs)
	var visit func(s int) int
	visit = func(s int) int {
		deps, combWritten := g.Comb[s]
		if !combWritten {
			return 0 // register, input, or unwritten: settled at level 0
		}
		if lvl, ok := g.Level[s]; ok {
			if lvl == inProgress {
				return 0 // combinational cycle: cut here
			}
			return lvl
		}
		g.Level[s] = inProgress
		max := 0
		for _, d := range deps {
			if l := visit(d); l > max {
				max = l
			}
		}
		g.Level[s] = max + 1
		return max + 1
	}
	for _, s := range sigs {
		visit(s)
	}
	g.Order = append([]int(nil), sigs...)
	sort.Slice(g.Order, func(i, j int) bool {
		a, b := g.Order[i], g.Order[j]
		if g.Level[a] != g.Level[b] {
			return g.Level[a] < g.Level[b]
		}
		return a < b
	})
}

// MaxLevel returns the deepest combinational settle level.
func (g *DepGraph) MaxLevel() int {
	max := 0
	for _, l := range g.Level {
		if l > max {
			max = l
		}
	}
	return max
}

// Cone returns the one-step cone of influence of a register: the
// signals its next-state function transitively reads through
// combinational logic, cut at registers and inputs (sorted). For a
// combinationally written signal the cone is its same-cycle fan-in.
func (g *DepGraph) Cone(target int) []int {
	seeds, isReg := g.Next[target]
	if !isReg {
		seeds = g.Comb[target]
	}
	seen := map[int]bool{}
	stack := append([]int(nil), seeds...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		// Expand only through combinational writes unless the signal is
		// a register being expanded as the cone's own seed: registers
		// and inputs cut the cone at the step boundary.
		if _, reg := g.Next[s]; reg {
			continue
		}
		stack = append(stack, g.Comb[s]...)
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// ConeInputs filters a cone down to the frontier the solver actually
// binds: registers and top-level inputs.
func (g *DepGraph) ConeInputs(cone []int) []int {
	var out []int
	for _, s := range cone {
		sig := g.d.Signals[s]
		if sig.IsReg || sig.Kind == elab.SigInput {
			out = append(out, s)
		}
	}
	return out
}

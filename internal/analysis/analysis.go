package analysis

import (
	"sort"

	"repro/internal/elab"
	"repro/internal/logic"
)

// Facts is the result of the static pass over one design: the
// dependency graph with levelized order, and a per-signal abstract
// Value under the canonical two-state reading (X as 0). Every signal's
// Value always admits 0, which absorbs X-at-reset and X-merge
// outcomes, so a value the lattice excludes is genuinely unreachable.
type Facts struct {
	Design *elab.Design
	Dep    *DepGraph
	// Values holds the per-signal abstract value, indexed by signal.
	Values []Value
	// Iterations is the number of fixpoint rounds taken (diagnostic).
	Iterations int
}

// fixpoint iteration bounds: widening starts once the known-bits side
// has had room to converge, and the hard cap is a safety net only.
const (
	widenAfter = 8
	maxIters   = 100
)

// Analyze runs the static pass: dependency graph construction,
// levelization, and the value fixpoint.
func Analyze(d *elab.Design) *Facts {
	f := &Facts{Design: d, Dep: BuildDepGraph(d)}
	f.inferValues()
	return f
}

// wholeAssigns collects, per signal, the RHS expressions of its
// whole-signal assignments; signals with partial writes are unmodelled
// (Top).
func wholeAssigns(d *elab.Design) (map[int][]elab.Expr, map[int]bool) {
	rhs := map[int][]elab.Expr{}
	partial := map[int]bool{}
	var walkTarget func(t elab.Target, e elab.Expr)
	walkTarget = func(t elab.Target, e elab.Expr) {
		switch tg := t.(type) {
		case elab.TSig:
			rhs[tg.Idx] = append(rhs[tg.Idx], e)
		case elab.TCat:
			for _, p := range tg.Parts {
				walkTarget(p, nil)
			}
		case elab.TMem:
		default:
			if sig := t.SignalIdx(); sig >= 0 {
				partial[sig] = true
			}
		}
	}
	var walk func(stmts []elab.Stmt)
	walk = func(stmts []elab.Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case elab.SAssign:
				walkTarget(s.LHS, s.RHS)
			case elab.SIf:
				walk(s.Then)
				walk(s.Else)
			case elab.SCase:
				for _, item := range s.Items {
					walk(item.Body)
				}
				walk(s.Default)
			}
		}
	}
	for _, p := range d.Procs {
		walk(p.Body)
	}
	// A TCat part assigned a split of a wider value is a partial model.
	for sig, exprs := range rhs {
		for _, e := range exprs {
			if e == nil {
				partial[sig] = true
			}
		}
	}
	return rhs, partial
}

// seedValue is the unconditional floor of a signal's value: zero (the
// canonical reading of X at reset) joined with any declared
// initializer.
func seedValue(s *elab.Signal) Value {
	v := ConstVal(s.Width, 0)
	if s.Init != nil && s.Init.IsFullyDefined() {
		v = v.Join(FromBV(*s.Init))
	}
	return v
}

// inferValues runs the least-fixpoint with delayed widening over the
// whole-signal assignment graph.
func (f *Facts) inferValues() {
	d := f.Design
	rhs, partial := wholeAssigns(d)
	f.Values = make([]Value, len(d.Signals))
	modelled := make([]bool, len(d.Signals))
	for i, s := range d.Signals {
		exprs, written := rhs[i]
		switch {
		case s.Kind == elab.SigInput, partial[i], !written, len(exprs) == 0,
			s.Width > maxValueWidth:
			f.Values[i] = Top(s.Width)
		default:
			f.Values[i] = seedValue(s)
			modelled[i] = true
		}
	}
	env := func(sig, w int) Value {
		if sig >= 0 && sig < len(f.Values) {
			return f.Values[sig]
		}
		return Top(w)
	}
	for iter := 0; iter < maxIters; iter++ {
		f.Iterations = iter + 1
		changed := false
		for i, s := range d.Signals {
			if !modelled[i] {
				continue
			}
			v := seedValue(s)
			for _, e := range rhs[i] {
				v = v.Join(coerce(EvalExpr(e, env), s.Width))
			}
			if iter >= widenAfter {
				v = v.widen(f.Values[i])
				v = f.Values[i].Join(v)
			}
			if !v.eq(f.Values[i]) {
				f.Values[i] = v
				changed = true
			}
		}
		if !changed {
			return
		}
	}
	// Cap reached: drop unconverged precision entirely.
	for i, s := range d.Signals {
		if modelled[i] {
			f.Values[i] = Top(s.Width)
		}
	}
}

// SignalValue returns the abstract value of a signal (Top when out of
// range).
func (f *Facts) SignalValue(idx int) Value {
	if idx < 0 || idx >= len(f.Values) {
		return Top(1)
	}
	return f.Values[idx]
}

// DomainValue abstracts a finite value set the way the linter's domain
// engine produces them, clipped to the signal width.
func DomainValue(w int, vals []uint64) Value { return FromSet(w, vals) }

// MayHold reports whether the analysis admits the signal taking the
// given concrete value (canonical two-state reading).
func (f *Facts) MayHold(idx int, v logic.BV) bool {
	return f.SignalValue(idx).MayEqual(v)
}

// ---- JSON fact export ----

// SignalFact is the serializable per-signal record of a fact dump.
type SignalFact struct {
	Name     string `json:"name"`
	Width    int    `json:"width"`
	Reg      bool   `json:"reg,omitempty"`
	Input    bool   `json:"input,omitempty"`
	Level    int    `json:"level,omitempty"`
	Value    string `json:"value"`
	ConeSize int    `json:"cone_size,omitempty"`
	// ConeInputs counts the registers and inputs on the cone frontier.
	ConeInputs int `json:"cone_inputs,omitempty"`
}

// Dump is the serializable summary of the analysis facts.
type Dump struct {
	Design     string       `json:"design"`
	Signals    int          `json:"signals"`
	Levels     int          `json:"levels"`
	Iterations int          `json:"iterations"`
	Facts      []SignalFact `json:"facts"`
}

// DumpFacts renders the facts for the -facts / -analysis CLI surfaces,
// sorted by signal name.
func (f *Facts) DumpFacts() Dump {
	out := Dump{
		Design:     f.Design.Name,
		Signals:    len(f.Design.Signals),
		Levels:     f.Dep.MaxLevel(),
		Iterations: f.Iterations,
	}
	for i, s := range f.Design.Signals {
		sf := SignalFact{
			Name:  s.Name,
			Width: s.Width,
			Reg:   s.IsReg,
			Input: s.Kind == elab.SigInput,
			Level: f.Dep.Level[i],
			Value: f.Values[i].String(),
		}
		if s.IsReg {
			cone := f.Dep.Cone(i)
			sf.ConeSize = len(cone)
			sf.ConeInputs = len(f.Dep.ConeInputs(cone))
		}
		out.Facts = append(out.Facts, sf)
	}
	sort.Slice(out.Facts, func(i, j int) bool { return out.Facts[i].Name < out.Facts[j].Name })
	return out
}

package analysis

import (
	"sort"

	"repro/internal/smt"
)

// FoldTerm rewrites a term under a variable binding, rebuilding every
// node through the smt package's constant-folding constructors. With
// the engine's per-dispatch bindings (current register values, pinned
// inputs) most of a dependency equation collapses to constants and the
// surviving term is the target's cone of influence: folding is exactly
// semantics-preserving, so the folded term is equisatisfiable with the
// original under the binding, and variables absent from the result
// provably do not influence it.
//
// bind maps variable names to replacement terms (typically constants);
// unbound variables are left in place. memo caches rebuilt nodes and
// must be used with a single bind map only.
func FoldTerm(t *smt.Term, bind map[string]*smt.Term, memo map[*smt.Term]*smt.Term) *smt.Term {
	if memo == nil {
		memo = map[*smt.Term]*smt.Term{}
	}
	if r, ok := memo[t]; ok {
		return r
	}
	var out *smt.Term
	switch t.Kind {
	case smt.KVar:
		if r, ok := bind[t.Name]; ok {
			out = r
		} else {
			out = t
		}
	case smt.KConst:
		out = t
	default:
		args := make([]*smt.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = FoldTerm(a, bind, memo)
		}
		switch t.Kind {
		case smt.KNot:
			out = smt.Not(args[0])
		case smt.KAnd:
			out = smt.And(args[0], args[1])
		case smt.KOr:
			out = smt.Or(args[0], args[1])
		case smt.KXor:
			out = smt.Xor(args[0], args[1])
		case smt.KAdd:
			out = smt.Add(args[0], args[1])
		case smt.KSub:
			out = smt.Sub(args[0], args[1])
		case smt.KMul:
			out = smt.Mul(args[0], args[1])
		case smt.KNeg:
			out = smt.Neg(args[0])
		case smt.KEq:
			out = smt.Eq(args[0], args[1])
		case smt.KUlt:
			out = smt.Ult(args[0], args[1])
		case smt.KUle:
			out = smt.Ule(args[0], args[1])
		case smt.KIte:
			out = smt.Ite(args[0], args[1], args[2])
		case smt.KExtract:
			out = smt.Extract(args[0], t.Hi, t.Lo)
		case smt.KConcat:
			out = foldConcat(args)
		case smt.KZext:
			out = smt.ZExt(args[0], t.W)
		case smt.KShl:
			out = smt.Shl(args[0], args[1])
		case smt.KShr:
			out = smt.Shr(args[0], args[1])
		case smt.KRedAnd:
			out = smt.RedAnd(args[0])
		case smt.KRedOr:
			out = smt.RedOr(args[0])
		case smt.KRedXor:
			out = smt.RedXor(args[0])
		default:
			out = t
		}
	}
	memo[t] = out
	return out
}

// foldConcat is smt.Concat plus the all-constant fold the shared
// constructor deliberately omits (folding there would perturb blast
// statistics on the unsliced path); the sliced path wants concats of
// bound register bits to collapse so the cone stays minimal.
func foldConcat(args []*smt.Term) *smt.Term {
	for _, a := range args {
		if a.Kind != smt.KConst {
			return smt.Concat(args...)
		}
	}
	v := args[0].Val
	for _, a := range args[1:] {
		v = v.Concat(a.Val)
	}
	return smt.Const(v)
}

// IsConstTrue reports whether the term is the 1-bit constant 1.
func IsConstTrue(t *smt.Term) bool {
	return t.Kind == smt.KConst && t.W == 1 && !t.Val.IsZero()
}

// IsConstFalse reports whether the term is the 1-bit constant 0.
func IsConstFalse(t *smt.Term) bool {
	return t.Kind == smt.KConst && t.W == 1 && t.Val.IsZero()
}

// CollectVars accumulates the term's variable names and widths into
// set, so callers can count or declare the surviving cone across
// several terms.
func CollectVars(t *smt.Term, set map[string]int) {
	if t.Kind == smt.KVar {
		set[t.Name] = t.W
		return
	}
	for _, a := range t.Args {
		CollectVars(a, set)
	}
}

// SortedVars returns the term's distinct variable names in sorted
// order (smt.Term.Vars returns map order, unusable where determinism
// matters).
func SortedVars(t *smt.Term) []string {
	set := map[string]int{}
	CollectVars(t, set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package analysis

import (
	"repro/internal/elab"
	"repro/internal/smt"
)

// TermEnv supplies the abstract value of a solver variable; return
// Top(w) for unconstrained variables.
type TermEnv func(name string, w int) Value

// TopTermEnv admits every value for every variable.
func TopTermEnv(name string, w int) Value { return Top(w) }

// EvalTerm abstractly interprets an SMT term under env. The result is
// a sound over-approximation of the term's concrete values: if the
// returned Value excludes v, no assignment consistent with env makes
// the term evaluate to v. memo may be nil; when supplied it must be
// used with a single env only.
func EvalTerm(t *smt.Term, env TermEnv, memo map[*smt.Term]Value) Value {
	if memo == nil {
		memo = map[*smt.Term]Value{}
	}
	if v, ok := memo[t]; ok {
		return v
	}
	var out Value
	switch t.Kind {
	case smt.KVar:
		out = env(t.Name, t.W)
	case smt.KConst:
		out = FromBV(t.Val)
	case smt.KNot:
		out = NotV(EvalTerm(t.Args[0], env, memo))
	case smt.KAnd:
		out = AndV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KOr:
		out = OrV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KXor:
		out = XorV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KAdd:
		out = AddV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KSub:
		out = SubV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KMul:
		out = MulV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KNeg:
		out = NegV(EvalTerm(t.Args[0], env, memo))
	case smt.KEq:
		out = EqV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KUlt:
		out = UltV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KUle:
		out = UleV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KIte:
		out = IteV(EvalTerm(t.Args[0], env, memo),
			EvalTerm(t.Args[1], env, memo), EvalTerm(t.Args[2], env, memo))
	case smt.KExtract:
		out = ExtractV(EvalTerm(t.Args[0], env, memo), t.Hi, t.Lo)
	case smt.KConcat:
		parts := make([]Value, len(t.Args))
		for i, a := range t.Args {
			parts[i] = EvalTerm(a, env, memo)
		}
		out = ConcatV(t.W, parts)
	case smt.KZext:
		out = ZExtV(EvalTerm(t.Args[0], env, memo), t.W)
	case smt.KShl:
		out = ShlV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KShr:
		out = ShrV(EvalTerm(t.Args[0], env, memo), EvalTerm(t.Args[1], env, memo))
	case smt.KRedAnd:
		out = RedAndV(EvalTerm(t.Args[0], env, memo))
	case smt.KRedOr:
		out = RedOrV(EvalTerm(t.Args[0], env, memo))
	case smt.KRedXor:
		out = RedXorV(EvalTerm(t.Args[0], env, memo))
	default:
		out = Top(t.W)
	}
	memo[t] = out
	return out
}

// SigEnv supplies the abstract value of a design signal by index.
type SigEnv func(sig, w int) Value

// truthy collapses a multi-bit value to its Verilog truthiness.
func truthy(v Value) Value {
	if v.W == 1 {
		return v
	}
	return RedOrV(v)
}

// coerce width-adjusts an operand (the elaborator pre-resizes, so this
// only fires on defensive paths).
func coerce(v Value, w int) Value {
	if v.W == w {
		return v
	}
	return ZExtV(v, w)
}

// EvalExpr abstractly interprets an elaborated IR expression under the
// canonical two-state reading (X as 0). Operators the lattice does not
// model return Top.
func EvalExpr(e elab.Expr, env SigEnv) Value {
	switch n := e.(type) {
	case elab.Const:
		return FromBV(n.V)
	case elab.Sig:
		return env(n.Idx, n.W)
	case elab.Bin:
		x := EvalExpr(n.X, env)
		y := EvalExpr(n.Y, env)
		switch n.Op {
		case elab.OpAdd:
			return coerce(AddV(x, coerce(y, x.W)), n.W)
		case elab.OpSub:
			return coerce(SubV(x, coerce(y, x.W)), n.W)
		case elab.OpMul:
			return coerce(MulV(x, coerce(y, x.W)), n.W)
		case elab.OpAnd:
			return coerce(AndV(x, coerce(y, x.W)), n.W)
		case elab.OpOr:
			return coerce(OrV(x, coerce(y, x.W)), n.W)
		case elab.OpXor:
			return coerce(XorV(x, coerce(y, x.W)), n.W)
		case elab.OpXnor:
			return coerce(NotV(XorV(x, coerce(y, x.W))), n.W)
		case elab.OpEq, elab.OpCaseEq:
			return EqV(x, coerce(y, x.W))
		case elab.OpNeq, elab.OpCaseNeq:
			return NotV(EqV(x, coerce(y, x.W)))
		case elab.OpLt:
			return UltV(x, coerce(y, x.W))
		case elab.OpLe:
			return UleV(x, coerce(y, x.W))
		case elab.OpGt:
			return UltV(coerce(y, x.W), x)
		case elab.OpGe:
			return UleV(coerce(y, x.W), x)
		case elab.OpShl:
			return coerce(ShlV(x, y), n.W)
		case elab.OpShr:
			return coerce(ShrV(x, y), n.W)
		case elab.OpLAnd:
			return AndV(truthy(x), truthy(y))
		case elab.OpLOr:
			return OrV(truthy(x), truthy(y))
		}
		return Top(n.W)
	case elab.Un:
		x := EvalExpr(n.X, env)
		switch n.Op {
		case elab.OpNot:
			return coerce(NotV(x), n.W)
		case elab.OpLNot:
			return coerce(NotV(truthy(x)), n.W)
		case elab.OpNeg:
			return coerce(NegV(x), n.W)
		case elab.OpRedAnd:
			return coerce(RedAndV(x), n.W)
		case elab.OpRedOr:
			return coerce(RedOrV(x), n.W)
		case elab.OpRedXor:
			return coerce(RedXorV(x), n.W)
		case elab.OpRedNand:
			return coerce(NotV(RedAndV(x)), n.W)
		case elab.OpRedNor:
			return coerce(NotV(RedOrV(x)), n.W)
		case elab.OpRedXnor:
			return coerce(NotV(RedXorV(x)), n.W)
		}
		return Top(n.W)
	case elab.Cond:
		return coerce(IteV(truthy(EvalExpr(n.C, env)),
			coerce(EvalExpr(n.T, env), n.W), coerce(EvalExpr(n.F, env), n.W)), n.W)
	case elab.CatE:
		parts := make([]Value, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = EvalExpr(p, env)
		}
		return ConcatV(n.W, parts)
	case elab.Slice:
		x := EvalExpr(n.X, env)
		if n.Hi >= x.W || n.Lo < 0 || x.Wide {
			return Top(n.Width())
		}
		return ExtractV(x, n.Hi, n.Lo)
	case elab.BitSel:
		x := EvalExpr(n.X, env)
		if i, ok := EvalExpr(n.Idx, env).IsConst(); ok && !x.Wide && int(i) < x.W {
			return ExtractV(x, int(i), int(i))
		}
		return Top(1)
	case elab.ZExt:
		return ZExtV(EvalExpr(n.X, env), n.W)
	case elab.DynSlice:
		x := EvalExpr(n.X, env)
		if s, ok := EvalExpr(n.Start, env).IsConst(); ok && !x.Wide {
			return ZExtV(ShrV(x, ConstVal(x.W, s)), n.W)
		}
		return Top(n.W)
	case elab.MemRead:
		return Top(n.W)
	}
	return Top(e.Width())
}

// Package analysis is the IR-level dataflow layer shared by the
// solver path, the linter and the engine: a signal-level dependency
// graph with levelized evaluation order (the groundwork for a compiled
// simulation backend), per-target cone-of-influence slices that cut
// the transition relation at registers, and a value-range /
// constant-propagation domain combining an unsigned interval with a
// known-bits mask — the generalization of the linter's finite value
// sets. Everything here is a sound over-approximation: a fact proven
// false by the lattice (a value outside a signal's Value, an arm whose
// condition evaluates to constant zero) is statically unreachable.
package analysis

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
)

// maxValueWidth bounds the signals the lattice tracks; wider values
// cannot be represented as uint64 intervals and widen to Top.
const maxValueWidth = 64

// Value is the abstract value of one signal or term: the conjunction
// of an unsigned interval [Lo, Hi] and a known-bits constraint (bit i
// is known iff Mask has bit i set, and then equals the corresponding
// bit of Bits). A concrete value v is admitted only when it satisfies
// BOTH constraints, so each transfer function may tighten either side
// independently and the meet stays sound.
//
// Wide is set for terms over 64 bits wide, which the lattice does not
// track (everything is admitted).
type Value struct {
	W      int
	Lo, Hi uint64
	Mask   uint64
	Bits   uint64
	Wide   bool
}

func maskOf(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// Top is the unconstrained value of the given width.
func Top(w int) Value {
	if w > maxValueWidth {
		return Value{W: w, Wide: true}
	}
	return Value{W: w, Hi: maskOf(w)}
}

// ConstVal is the singleton abstract value {v} at width w.
func ConstVal(w int, v uint64) Value {
	if w > maxValueWidth {
		return Value{W: w, Wide: true}
	}
	v &= maskOf(w)
	return Value{W: w, Lo: v, Hi: v, Mask: maskOf(w), Bits: v}
}

// FromSet abstracts a finite value set: the interval hull plus the
// bits on which every member agrees. An empty set yields Top (the
// caller has proven nothing).
func FromSet(w int, vals []uint64) Value {
	if len(vals) == 0 || w > maxValueWidth {
		return Top(w)
	}
	m := maskOf(w)
	out := ConstVal(w, vals[0])
	for _, v := range vals[1:] {
		out = out.Join(ConstVal(w, v&m))
	}
	return out
}

// FromBV abstracts a four-state constant under the engine's canonical
// two-state reading (X/Z bits as 0).
func FromBV(v logic.BV) Value {
	if v.Width() > maxValueWidth {
		return Top(v.Width())
	}
	u := uint64(0)
	for i := 0; i < v.Width(); i++ {
		if v.Bit(i) == logic.L1 {
			u |= uint64(1) << uint(i)
		}
	}
	return ConstVal(v.Width(), u)
}

// knownZero returns the bits proven zero; knownOne the bits proven one.
func (v Value) knownZero() uint64 { return v.Mask &^ v.Bits }
func (v Value) knownOne() uint64  { return v.Mask & v.Bits }

// normalize propagates each constraint into the other once: known-one
// bits raise Lo, known-zero bits lower Hi, and an upper bound proves
// the bits above its length zero. One pass in each direction keeps
// every derivation sound.
func (v Value) normalize() Value {
	if v.Wide {
		return v
	}
	m := maskOf(v.W)
	v.Lo &= m
	v.Hi &= m
	v.Mask &= m
	v.Bits &= v.Mask
	// Bits above the upper bound's length are known zero.
	hiLen := bits.Len64(v.Hi)
	above := m &^ maskOf(hiLen)
	v.Mask |= above
	v.Bits &^= above
	// Interval tightened by the known bits.
	if k1 := v.knownOne(); v.Lo < k1 {
		v.Lo = k1
	}
	if hi := m &^ v.knownZero(); v.Hi > hi {
		v.Hi = hi
	}
	return v
}

// Empty reports whether the constraints admit no value at all (the
// signature of a statically infeasible target).
func (v Value) Empty() bool {
	if v.Wide {
		return false
	}
	if v.Lo > v.Hi {
		return true
	}
	// The smallest value satisfying the known bits may exceed Hi.
	return v.knownOne() > v.Hi
}

// Contains reports whether the abstract value admits concrete v.
func (v Value) Contains(c uint64) bool {
	if v.Wide {
		return true
	}
	c &= maskOf(v.W)
	return c >= v.Lo && c <= v.Hi && c&v.Mask == v.Bits
}

// MayEqual reports whether the abstract value admits the canonical
// two-state reading of bv (X/Z as 0). Widths over 64 bits admit
// everything.
func (v Value) MayEqual(bv logic.BV) bool {
	if v.Wide || bv.Width() > maxValueWidth {
		return true
	}
	u := uint64(0)
	for i := 0; i < bv.Width(); i++ {
		if bv.Bit(i) == logic.L1 {
			u |= uint64(1) << uint(i)
		}
	}
	return v.Contains(u)
}

// IsConst reports the singleton value when the lattice pins every bit.
func (v Value) IsConst() (uint64, bool) {
	if v.Wide {
		return 0, false
	}
	if v.Lo == v.Hi {
		return v.Lo, true
	}
	if v.Mask == maskOf(v.W) {
		return v.Bits, true
	}
	return 0, false
}

// IsTop reports whether the value carries no information.
func (v Value) IsTop() bool {
	if v.Wide {
		return true
	}
	return v.Lo == 0 && v.Hi == maskOf(v.W) && v.Mask == 0
}

// Join is the lattice union: interval hull plus agreed bits.
func (v Value) Join(o Value) Value {
	if v.Wide || o.Wide {
		return Top(v.W)
	}
	out := Value{W: v.W}
	out.Lo = v.Lo
	if o.Lo < out.Lo {
		out.Lo = o.Lo
	}
	out.Hi = v.Hi
	if o.Hi > out.Hi {
		out.Hi = o.Hi
	}
	out.Mask = v.Mask & o.Mask &^ (v.Bits ^ o.Bits)
	out.Bits = v.Bits & out.Mask
	return out.normalize()
}

// widen relaxes the interval bounds that are still moving toward the
// lattice extremes, guaranteeing fixpoint termination for counters;
// the finite-height known-bits side is left to converge on its own.
func (v Value) widen(prev Value) Value {
	if v.Wide || prev.Wide {
		return v
	}
	if v.Lo < prev.Lo {
		v.Lo = 0
	}
	if v.Hi > prev.Hi {
		v.Hi = maskOf(v.W)
	}
	return v.normalize()
}

// eq reports exact lattice equality (fixpoint detection).
func (v Value) eq(o Value) bool {
	return v.W == o.W && v.Wide == o.Wide && v.Lo == o.Lo && v.Hi == o.Hi &&
		v.Mask == o.Mask && v.Bits == o.Bits
}

// String renders the value for fact dumps and diagnostics.
func (v Value) String() string {
	if v.Wide {
		return fmt.Sprintf("top(w=%d)", v.W)
	}
	if c, ok := v.IsConst(); ok {
		return fmt.Sprintf("const(%d)", c)
	}
	if v.IsTop() {
		return fmt.Sprintf("top(w=%d)", v.W)
	}
	return fmt.Sprintf("[%d,%d] mask=%#x bits=%#x", v.Lo, v.Hi, v.Mask, v.Bits)
}

// ---- transfer functions ----

func top2(w int, a, b Value) (Value, bool) {
	if a.Wide || b.Wide || w > maxValueWidth {
		return Top(w), true
	}
	return Value{}, false
}

// AndV abstracts bitwise conjunction.
func AndV(a, b Value) Value {
	if t, wide := top2(a.W, a, b); wide {
		return t
	}
	out := Value{W: a.W}
	k1 := a.knownOne() & b.knownOne()
	k0 := a.knownZero() | b.knownZero()
	out.Mask = k0 | k1
	out.Bits = k1
	out.Hi = a.Hi
	if b.Hi < out.Hi {
		out.Hi = b.Hi
	}
	return out.normalize()
}

// OrV abstracts bitwise disjunction.
func OrV(a, b Value) Value {
	if t, wide := top2(a.W, a, b); wide {
		return t
	}
	out := Value{W: a.W}
	k1 := a.knownOne() | b.knownOne()
	k0 := a.knownZero() & b.knownZero()
	out.Mask = k0 | k1
	out.Bits = k1
	out.Lo = a.Lo
	if b.Lo > out.Lo {
		out.Lo = b.Lo
	}
	out.Hi = maskOf(bits.Len64(a.Hi | b.Hi))
	return out.normalize()
}

// XorV abstracts bitwise exclusive or.
func XorV(a, b Value) Value {
	if t, wide := top2(a.W, a, b); wide {
		return t
	}
	out := Value{W: a.W}
	out.Mask = a.Mask & b.Mask
	out.Bits = (a.Bits ^ b.Bits) & out.Mask
	out.Hi = maskOf(bits.Len64(a.Hi | b.Hi))
	return out.normalize()
}

// NotV abstracts bitwise negation.
func NotV(a Value) Value {
	if a.Wide {
		return Top(a.W)
	}
	m := maskOf(a.W)
	out := Value{W: a.W}
	out.Mask = a.Mask
	out.Bits = ^a.Bits & a.Mask & m
	out.Lo = (m - a.Hi) & m
	out.Hi = (m - a.Lo) & m
	return out.normalize()
}

// trailingKnown counts the contiguous known bits from bit 0 of both
// operands — addition and subtraction determine exactly that many low
// result bits (the carry into bit 0 is fixed).
func trailingKnown(a, b Value) int {
	return bits.TrailingZeros64(^(a.Mask & b.Mask))
}

// AddV abstracts modular addition.
func AddV(a, b Value) Value {
	if t, wide := top2(a.W, a, b); wide {
		return t
	}
	m := maskOf(a.W)
	out := Top(a.W)
	lo, loCarry := bits.Add64(a.Lo, b.Lo, 0)
	hi, hiCarry := bits.Add64(a.Hi, b.Hi, 0)
	if loCarry == 0 && hiCarry == 0 && hi <= m {
		out.Lo, out.Hi = lo, hi
	}
	if t := trailingKnown(a, b); t > 0 {
		tm := maskOf(t)
		out.Mask |= tm
		out.Bits = (out.Bits &^ tm) | ((a.Bits + b.Bits) & tm)
	}
	return out.normalize()
}

// SubV abstracts modular subtraction.
func SubV(a, b Value) Value {
	if t, wide := top2(a.W, a, b); wide {
		return t
	}
	out := Top(a.W)
	if a.Lo >= b.Hi {
		out.Lo = a.Lo - b.Hi
		out.Hi = a.Hi - b.Lo
	}
	if t := trailingKnown(a, b); t > 0 {
		tm := maskOf(t)
		out.Mask |= tm
		out.Bits = (out.Bits &^ tm) | ((a.Bits - b.Bits) & tm)
	}
	return out.normalize()
}

// MulV abstracts modular multiplication.
func MulV(a, b Value) Value {
	if t, wide := top2(a.W, a, b); wide {
		return t
	}
	if ca, ok := a.IsConst(); ok {
		if cb, ok2 := b.IsConst(); ok2 {
			return ConstVal(a.W, ca*cb)
		}
	}
	out := Top(a.W)
	hiHi, hiLo := bits.Mul64(a.Hi, b.Hi)
	if hiHi == 0 && hiLo <= maskOf(a.W) {
		out.Lo = a.Lo * b.Lo
		out.Hi = hiLo
	}
	return out.normalize()
}

// NegV abstracts two's complement negation.
func NegV(a Value) Value { return SubV(ConstVal(a.W, 0), a) }

func bool1(b bool) Value {
	if b {
		return ConstVal(1, 1)
	}
	return ConstVal(1, 0)
}

func topBool() Value { return Top(1) }

// EqV abstracts bit-vector equality into a 1-bit value.
func EqV(a, b Value) Value {
	if a.Wide || b.Wide {
		return topBool()
	}
	if ca, ok := a.IsConst(); ok {
		if cb, ok2 := b.IsConst(); ok2 {
			return bool1(ca == cb)
		}
	}
	// Disjoint intervals or conflicting known bits refute equality.
	if a.Hi < b.Lo || b.Hi < a.Lo {
		return bool1(false)
	}
	if (a.Bits^b.Bits)&a.Mask&b.Mask != 0 {
		return bool1(false)
	}
	return topBool()
}

// UltV abstracts unsigned less-than.
func UltV(a, b Value) Value {
	if a.Wide || b.Wide {
		return topBool()
	}
	if a.Hi < b.Lo {
		return bool1(true)
	}
	if a.Lo >= b.Hi {
		return bool1(false)
	}
	return topBool()
}

// UleV abstracts unsigned less-or-equal.
func UleV(a, b Value) Value {
	if a.Wide || b.Wide {
		return topBool()
	}
	if a.Hi <= b.Lo {
		return bool1(true)
	}
	if a.Lo > b.Hi {
		return bool1(false)
	}
	return topBool()
}

// IteV abstracts if-then-else on a 1-bit condition.
func IteV(c, t, f Value) Value {
	if cv, ok := c.IsConst(); ok {
		if cv != 0 {
			return t
		}
		return f
	}
	return t.Join(f)
}

// ExtractV abstracts bit-slice selection [hi:lo].
func ExtractV(a Value, hi, lo int) Value {
	w := hi - lo + 1
	if a.Wide {
		return Top(w)
	}
	out := Top(w)
	out.Mask = (a.Mask >> uint(lo)) & maskOf(w)
	out.Bits = (a.Bits >> uint(lo)) & out.Mask
	if hi == a.W-1 {
		// No high bits dropped: the interval shifts through.
		out.Lo = a.Lo >> uint(lo)
		out.Hi = a.Hi >> uint(lo)
	}
	return out.normalize()
}

// ConcatV abstracts concatenation, first part in the MSBs.
func ConcatV(w int, parts []Value) Value {
	if w > maxValueWidth {
		return Top(w)
	}
	out := ConstVal(0, 0)
	out.W = 0
	for _, p := range parts {
		if p.Wide {
			return Top(w)
		}
		nw := out.W + p.W
		out = Value{
			W:    nw,
			Lo:   out.Lo<<uint(p.W) | p.Lo,
			Hi:   out.Hi<<uint(p.W) | p.Hi,
			Mask: out.Mask<<uint(p.W) | p.Mask,
			Bits: out.Bits<<uint(p.W) | p.Bits,
		}
	}
	out.W = w
	return out.normalize()
}

// ZExtV abstracts zero extension (or truncation) to width w.
func ZExtV(a Value, w int) Value {
	switch {
	case w == a.W:
		return a
	case w < a.W:
		return ExtractV(a, w-1, 0)
	case a.Wide || w > maxValueWidth:
		return Top(w)
	}
	out := a
	out.W = w
	out.Mask |= maskOf(w) &^ maskOf(a.W) // extension bits are known zero
	return out.normalize()
}

// ShlV abstracts a dynamic left shift.
func ShlV(a, amt Value) Value {
	if a.Wide || amt.Wide {
		return Top(a.W)
	}
	if s, ok := amt.IsConst(); ok {
		if s >= uint64(a.W) {
			return ConstVal(a.W, 0)
		}
		out := Top(a.W)
		out.Mask = (a.Mask << uint(s)) | maskOf(int(s))
		out.Bits = (a.Bits << uint(s)) & out.Mask
		if hiHi := bits.Len64(a.Hi) + int(s); hiHi <= a.W && hiHi <= 64 {
			out.Lo = a.Lo << uint(s)
			out.Hi = a.Hi << uint(s)
		}
		return out.normalize()
	}
	return Top(a.W)
}

// ShrV abstracts a dynamic logical right shift.
func ShrV(a, amt Value) Value {
	if a.Wide || amt.Wide {
		return Top(a.W)
	}
	if s, ok := amt.IsConst(); ok {
		if s >= 64 {
			return ConstVal(a.W, 0)
		}
		out := Top(a.W)
		out.Lo = a.Lo >> uint(s)
		out.Hi = a.Hi >> uint(s)
		out.Mask = a.Mask >> uint(s)
		out.Bits = a.Bits >> uint(s)
		if s > 0 {
			high := maskOf(a.W) &^ (maskOf(a.W) >> uint(s))
			out.Mask |= high
			out.Bits &^= high
		}
		return out.normalize()
	}
	// Shifting right never increases the value.
	out := Top(a.W)
	out.Hi = a.Hi
	return out.normalize()
}

// RedAndV abstracts the 1-bit AND reduction.
func RedAndV(a Value) Value {
	if a.Wide {
		return topBool()
	}
	m := maskOf(a.W)
	if a.knownOne() == m {
		return bool1(true)
	}
	if a.knownZero() != 0 || a.Hi < m {
		return bool1(false)
	}
	return topBool()
}

// RedOrV abstracts the 1-bit OR reduction.
func RedOrV(a Value) Value {
	if a.Wide {
		return topBool()
	}
	if a.Lo > 0 || a.knownOne() != 0 {
		return bool1(true)
	}
	if c, ok := a.IsConst(); ok {
		return bool1(c != 0)
	}
	return topBool()
}

// RedXorV abstracts the 1-bit XOR reduction (parity).
func RedXorV(a Value) Value {
	if c, ok := a.IsConst(); ok {
		return bool1(bits.OnesCount64(c)%2 == 1)
	}
	return topBool()
}

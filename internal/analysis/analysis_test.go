package analysis

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/logic"
	"repro/internal/smt"
)

func elaborate(t *testing.T, src, top string) *elab.Design {
	t.Helper()
	ast, err := hdl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := elab.Elaborate(ast, top, nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

// randValue draws a random abstract value together with the concrete
// set it was abstracted from, so soundness can be checked member-wise.
func randValue(r *rand.Rand, w int) (Value, []uint64) {
	n := 1 + r.Intn(4)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = r.Uint64() & maskOf(w)
	}
	return FromSet(w, vals), vals
}

// TestTransferSoundness samples random abstract values with their
// concrete witnesses and checks that every transfer function's result
// admits the corresponding concrete result: the lattice must never
// exclude a value that can actually occur.
func TestTransferSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		w := 1 + r.Intn(16)
		m := maskOf(w)
		a, as := randValue(r, w)
		b, bs := randValue(r, w)
		ca, cb := as[r.Intn(len(as))], bs[r.Intn(len(bs))]

		type tc struct {
			name string
			got  Value
			want uint64
		}
		cases := []tc{
			{"and", AndV(a, b), ca & cb},
			{"or", OrV(a, b), ca | cb},
			{"xor", XorV(a, b), ca ^ cb},
			{"not", NotV(a), ^ca & m},
			{"add", AddV(a, b), (ca + cb) & m},
			{"sub", SubV(a, b), (ca - cb) & m},
			{"mul", MulV(a, b), (ca * cb) & m},
			{"neg", NegV(a), (-ca) & m},
			{"eq", EqV(a, b), b2u(ca == cb)},
			{"ult", UltV(a, b), b2u(ca < cb)},
			{"ule", UleV(a, b), b2u(ca <= cb)},
			{"redand", RedAndV(a), b2u(ca == m)},
			{"redor", RedOrV(a), b2u(ca != 0)},
			{"redxor", RedXorV(a), uint64(bits.OnesCount64(ca) % 2)},
			{"zext", ZExtV(a, w+4), ca},
			{"trunc", ZExtV(a, (w+1)/2), ca & maskOf((w+1)/2)},
		}
		if w > 1 {
			hi, lo := r.Intn(w), 0
			if hi > 0 {
				lo = r.Intn(hi)
			}
			cases = append(cases, tc{"extract", ExtractV(a, hi, lo),
				(ca >> uint(lo)) & maskOf(hi-lo+1)})
		}
		s := uint64(r.Intn(w + 2))
		sv := ConstVal(8, s)
		shl := ca << s & m
		if s >= 64 {
			shl = 0
		}
		cases = append(cases,
			tc{"shl", ShlV(a, sv), shl},
			tc{"shr", ShrV(a, sv), ca >> s},
			tc{"shr-dyn", ShrV(a, Top(8)), ca >> s},
			tc{"concat", ConcatV(2*w, []Value{a, b}), ca<<uint(w) | cb},
			tc{"ite-t", IteV(ConstVal(1, 1), a, b), ca},
			tc{"ite-f", IteV(ConstVal(1, 0), a, b), cb},
			tc{"ite-top", IteV(Top(1), a, b), ca},
			tc{"join", a.Join(b), cb},
			tc{"widen", a.widen(b), ca},
		)
		for _, c := range cases {
			if !c.got.Contains(c.want) {
				t.Fatalf("trial %d w=%d %s: %s excludes concrete %d (a=%s from %v, b=%s from %v)",
					trial, w, c.name, c.got.String(), c.want, a.String(), as, b.String(), bs)
			}
			if c.got.Empty() {
				t.Fatalf("trial %d w=%d %s: nonempty inputs produced empty %s",
					trial, w, c.name, c.got.String())
			}
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TestTransferConstExact checks that constants in yield constants out:
// the lattice loses nothing on fully concrete operands, which is what
// the static-infeasibility check in the sliced solver relies on.
func TestTransferConstExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		w := 1 + r.Intn(16)
		m := maskOf(w)
		ca, cb := r.Uint64()&m, r.Uint64()&m
		a, b := ConstVal(w, ca), ConstVal(w, cb)
		check := func(name string, got Value, want uint64) {
			t.Helper()
			c, ok := got.IsConst()
			if !ok {
				t.Fatalf("%s(%d,%d) at w=%d not constant: %s", name, ca, cb, w, got.String())
			}
			if c != want {
				t.Fatalf("%s(%d,%d) at w=%d = %d, want %d", name, ca, cb, w, c, want)
			}
		}
		check("and", AndV(a, b), ca&cb)
		check("or", OrV(a, b), ca|cb)
		check("xor", XorV(a, b), ca^cb)
		check("add", AddV(a, b), (ca+cb)&m)
		check("sub", SubV(a, b), (ca-cb)&m)
		check("mul", MulV(a, b), (ca*cb)&m)
		check("not", NotV(a), ^ca&m)
		check("eq", EqV(a, b), b2u(ca == cb))
		check("ult", UltV(a, b), b2u(ca < cb))
	}
}

func TestValueBasics(t *testing.T) {
	v := ConstVal(8, 42)
	if c, ok := v.IsConst(); !ok || c != 42 {
		t.Fatalf("ConstVal(8,42).IsConst() = %d,%v", c, ok)
	}
	if v.Contains(41) || !v.Contains(42) {
		t.Fatal("singleton containment wrong")
	}
	s := FromSet(4, []uint64{1, 3, 5})
	for _, c := range []uint64{1, 3, 5} {
		if !s.Contains(c) {
			t.Fatalf("FromSet excludes member %d: %s", c, s.String())
		}
	}
	if s.Contains(0) || s.Contains(7) {
		t.Fatalf("FromSet hull too loose where it should prune: %s", s.String())
	}
	if !Top(8).IsTop() || Top(200).IsTop() == false {
		t.Fatal("Top not top")
	}
	if !s.MayEqual(logic.FromUint64(4, 3)) || s.MayEqual(logic.FromUint64(4, 8)) {
		t.Fatal("MayEqual disagrees with Contains")
	}
	// An interval meeting contradictory known bits is empty.
	e := Value{W: 4, Lo: 2, Hi: 1, Mask: 0, Bits: 0}
	if !e.Empty() {
		t.Fatal("inverted interval not empty")
	}
}

// TestFoldTermEquivalence folds random terms under full concrete
// bindings and checks the result is a constant agreeing with abstract
// evaluation under the same environment — folding must be exactly
// semantics-preserving.
func TestFoldTermEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	a, b := smt.Var("a", 8), smt.Var("b", 8)
	c := smt.Var("c", 1)
	terms := []*smt.Term{
		smt.Add(a, b),
		smt.And(smt.Not(a), smt.Or(b, smt.ConstUint(8, 0x0f))),
		smt.Ite(c, smt.Sub(a, b), smt.Mul(a, b)),
		smt.Eq(smt.ZExt(smt.Extract(a, 7, 4), 8), b),
		smt.Concat(smt.RedOr(a), smt.RedAnd(b), smt.RedXor(a), c),
		smt.Ult(smt.Shl(a, smt.ConstUint(8, 2)), smt.Shr(b, smt.ConstUint(8, 1))),
		smt.Ule(smt.Neg(a), smt.Xor(a, b)),
	}
	for trial := 0; trial < 200; trial++ {
		va, vb, vc := r.Uint64()&0xff, r.Uint64()&0xff, r.Uint64()&1
		bind := map[string]*smt.Term{
			"a": smt.ConstUint(8, va),
			"b": smt.ConstUint(8, vb),
			"c": smt.ConstUint(1, vc),
		}
		env := func(name string, w int) Value {
			switch name {
			case "a":
				return ConstVal(8, va)
			case "b":
				return ConstVal(8, vb)
			case "c":
				return ConstVal(1, vc)
			}
			return Top(w)
		}
		memo := map[*smt.Term]*smt.Term{}
		for _, tm := range terms {
			folded := FoldTerm(tm, bind, memo)
			if folded.Kind != smt.KConst {
				t.Fatalf("full binding did not fold %s to a constant: %s", tm, folded)
			}
			fv, _ := folded.Val.Uint64()
			av := EvalTerm(tm, env, map[*smt.Term]Value{})
			if got, ok := av.IsConst(); !ok || got != fv {
				t.Fatalf("abstract eval of %s = %s, folded value %d (a=%d b=%d c=%d)",
					tm, av.String(), fv, va, vb, vc)
			}
		}
	}
}

// TestFoldTermComposes checks staged folding: binding a subset of the
// variables and then the rest must agree with folding everything at
// once — partial evaluation is independent of the binding order.
func TestFoldTermComposes(t *testing.T) {
	a, b := smt.Var("a", 8), smt.Var("b", 8)
	tm := smt.Ite(smt.Ult(a, b), smt.Add(a, b), smt.Xor(a, smt.Not(b)))
	bindA := map[string]*smt.Term{"a": smt.ConstUint(8, 17)}
	bindB := map[string]*smt.Term{"b": smt.ConstUint(8, 200)}
	both := map[string]*smt.Term{"a": smt.ConstUint(8, 17), "b": smt.ConstUint(8, 200)}
	staged := FoldTerm(FoldTerm(tm, bindA, map[*smt.Term]*smt.Term{}), bindB, map[*smt.Term]*smt.Term{})
	direct := FoldTerm(tm, both, map[*smt.Term]*smt.Term{})
	if staged.Kind != smt.KConst || direct.Kind != smt.KConst {
		t.Fatalf("staged=%s direct=%s not constants", staged, direct)
	}
	sv, _ := staged.Val.Uint64()
	dv, _ := direct.Val.Uint64()
	if sv != dv {
		t.Fatalf("staged fold %d != direct fold %d", sv, dv)
	}
	// Partial binding leaves exactly the unbound variable in the cone.
	part := FoldTerm(tm, bindA, map[*smt.Term]*smt.Term{})
	if vars := SortedVars(part); len(vars) != 1 || vars[0] != "b" {
		t.Fatalf("partial fold cone = %v, want [b]", vars)
	}
}

const depSrc = `
module dep (input clk_i, input rst_ni, input [3:0] i, output reg [3:0] o);
  logic [3:0] aa;
  logic [3:0] bb;
  logic [3:0] r_q;
  always_comb begin
    aa = i + 4'd1;
    bb = aa & 4'd3;
  end
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) r_q <= 0;
    else r_q <= bb;
  end
  always_comb begin
    o = r_q;
  end
endmodule`

func TestDepGraphLevelsAndCone(t *testing.T) {
	d := elaborate(t, depSrc, "dep")
	g := BuildDepGraph(d)
	ai := d.ByName["aa"].Index
	bi := d.ByName["bb"].Index
	ri := d.ByName["r_q"].Index
	ii := d.ByName["i"].Index
	oi := d.ByName["o"].Index
	if g.Level[ai] != 1 {
		t.Errorf("level(aa) = %d, want 1", g.Level[ai])
	}
	if g.Level[bi] != 2 {
		t.Errorf("level(bb) = %d, want 2", g.Level[bi])
	}
	if g.Level[oi] != 1 {
		t.Errorf("level(o) = %d, want 1 (reads only the register)", g.Level[oi])
	}
	if g.MaxLevel() != 2 {
		t.Errorf("max level = %d, want 2", g.MaxLevel())
	}
	// Order must be topological: aa before bb.
	pos := map[int]int{}
	for p, s := range g.Order {
		pos[s] = p
	}
	if pos[ai] > pos[bi] {
		t.Errorf("levelized order places bb before its dependency aa: %v", g.Order)
	}
	cone := g.Cone(ri)
	want := map[int]bool{ai: true, bi: true, ii: true}
	for _, s := range cone {
		if s == ri {
			t.Errorf("cone of r_q contains r_q itself before the cut: %v", cone)
		}
		delete(want, s)
	}
	// rst_ni guards the write, so it may appear; aa, bb, i must.
	if len(want) != 0 {
		t.Errorf("cone of r_q missing %v (got %v)", want, cone)
	}
	ins := g.ConeInputs(cone)
	for _, s := range ins {
		sig := d.Signals[s]
		if !sig.IsReg && sig.Kind != elab.SigInput {
			t.Errorf("cone input %s is neither register nor input", sig.Name)
		}
	}
}

const counterSrc = `
module counter (input clk_i, input rst_ni, input en, output reg [7:0] cnt_q);
  logic [1:0] st_q;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      cnt_q <= 0;
      st_q <= 0;
    end else begin
      if (en) cnt_q <= cnt_q + 8'd1;
      if (st_q == 2'd0) st_q <= 2'd1;
      else if (st_q == 2'd1) st_q <= 2'd2;
      else st_q <= 2'd0;
    end
  end
endmodule`

func TestAnalyzeFixpoint(t *testing.T) {
	d := elaborate(t, counterSrc, "counter")
	f := Analyze(d)
	if f.Iterations >= maxIters {
		t.Fatalf("fixpoint hit the iteration cap (%d)", f.Iterations)
	}
	// Every signal's value must admit zero (the canonical X reading).
	for i, s := range d.Signals {
		if !f.Values[i].Contains(0) {
			t.Errorf("signal %s value %s excludes 0", s.Name, f.Values[i].String())
		}
	}
	// The 3-valued state register must keep a bounded hull.
	st := d.ByName["st_q"].Index
	v := f.SignalValue(st)
	if v.Wide || v.Hi > 2 {
		t.Errorf("st_q value %s, want hull within [0,2]", v.String())
	}
	if v.Contains(3) {
		t.Errorf("st_q admits unreachable encoding 3: %s", v.String())
	}
	if !f.MayHold(st, logic.FromUint64(2, 2)) {
		t.Error("st_q must admit reachable encoding 2")
	}
	// The counter itself is widened to full range, not stuck.
	cnt := d.ByName["cnt_q"].Index
	if !f.Values[cnt].Contains(200) {
		t.Errorf("cnt_q value %s excludes a reachable count", f.Values[cnt].String())
	}
}

func TestDumpFactsShape(t *testing.T) {
	d := elaborate(t, counterSrc, "counter")
	f := Analyze(d)
	dump := f.DumpFacts()
	if dump.Design != "counter" || dump.Signals != len(d.Signals) {
		t.Fatalf("dump header wrong: %+v", dump)
	}
	if len(dump.Facts) != len(d.Signals) {
		t.Fatalf("dump has %d facts for %d signals", len(dump.Facts), len(d.Signals))
	}
	for i := 1; i < len(dump.Facts); i++ {
		if dump.Facts[i-1].Name > dump.Facts[i].Name {
			t.Fatalf("facts not sorted by name at %d: %q > %q",
				i, dump.Facts[i-1].Name, dump.Facts[i].Name)
		}
	}
	for _, sf := range dump.Facts {
		if sf.Reg && sf.ConeSize == 0 && sf.Name == "cnt_q" {
			t.Errorf("register %s reports an empty cone", sf.Name)
		}
	}
}

package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/designs"
	"repro/internal/elab"
)

// TestLevelizedOrderIsTopological is the property behind the compiled
// backend's levelized drain mode: for every builtin design, the
// levelized order of the register-cut dependency graph must be a valid
// topological order of the combinational subgraph. Registers and
// inputs cut the graph at level 0, so a combinationally written signal
// must appear strictly after every combinationally written signal it
// reads, and its level must be exactly one above its deepest
// dependency. The builtin designs are all combinationally acyclic, so
// the check is strict — no cycle-cut exemptions.
func TestLevelizedOrderIsTopological(t *testing.T) {
	for _, b := range designs.AllBenchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			d, err := b.Elaborate()
			if err != nil {
				t.Fatalf("elaborate: %v", err)
			}
			g := analysis.BuildDepGraph(d)

			// The order covers exactly the combinationally written
			// signals, each once.
			if len(g.Order) != len(g.Comb) {
				t.Fatalf("order has %d entries for %d comb signals", len(g.Order), len(g.Comb))
			}
			pos := make(map[int]int, len(g.Order))
			for i, s := range g.Order {
				if _, dup := pos[s]; dup {
					t.Fatalf("signal %s appears twice in the order", d.Signals[s].Name)
				}
				if _, ok := g.Comb[s]; !ok {
					t.Fatalf("order contains %s, which is not comb-written", d.Signals[s].Name)
				}
				pos[s] = i
			}

			for _, s := range g.Order {
				deepest := 0
				for _, dep := range g.Comb[s] {
					if dep == s {
						// A partial assignment is a read-modify-write
						// of its own root signal: an intra-process
						// data dependency, not a scheduling edge. The
						// levelizer cuts the self-loop.
						continue
					}
					if _, combWritten := g.Comb[dep]; !combWritten {
						// Register, input, or unwritten: the cut
						// frontier, settled before any comb eval.
						if g.Level[dep] != 0 {
							t.Errorf("cut signal %s has level %d, want 0",
								d.Signals[dep].Name, g.Level[dep])
						}
						continue
					}
					if pos[dep] >= pos[s] {
						t.Errorf("%s (pos %d) reads %s (pos %d): not topological",
							d.Signals[s].Name, pos[s], d.Signals[dep].Name, pos[dep])
					}
					if g.Level[dep] >= g.Level[s] {
						t.Errorf("%s (level %d) reads %s (level %d): level not increasing",
							d.Signals[s].Name, g.Level[s], d.Signals[dep].Name, g.Level[dep])
					}
					if g.Level[dep] > deepest {
						deepest = g.Level[dep]
					}
				}
				if g.Level[s] != deepest+1 {
					t.Errorf("%s has level %d, want %d (one above deepest dependency)",
						d.Signals[s].Name, g.Level[s], deepest+1)
				}
			}

			// Sequential next-state reads stay within the design: the
			// register cut is well formed.
			for reg, deps := range g.Next {
				if reg < 0 || reg >= len(d.Signals) {
					t.Fatalf("next-state map references signal %d outside the design", reg)
				}
				for _, dep := range deps {
					if dep < 0 || dep >= len(d.Signals) {
						t.Fatalf("register %s reads signal %d outside the design",
							d.Signals[reg].Name, dep)
					}
				}
			}
			_ = elab.ProcSeq // document the register cut referenced above
		})
	}
}

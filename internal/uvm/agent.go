package uvm

import (
	"fmt"
	"sort"

	"repro/internal/elab"
	"repro/internal/logic"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/simc"
)

// Driver translates sequence items into DUV pin assignments and clocks
// the design (Figure 2, block 4).
type Driver struct {
	BaseComponent
	Sim   sim.DUV
	Clock int // clock signal index, -1 for purely combinational DUVs
	// fieldIdx maps item fields to input signal indices.
	fieldIdx map[string]int
}

// NewDriver binds a driver to a DUV backend. Field-to-port mapping is
// by name against the design's input ports.
func NewDriver(name string, s sim.DUV, clock int) *Driver {
	d := &Driver{
		BaseComponent: NewBaseComponent(name),
		Sim:           s,
		Clock:         clock,
		fieldIdx:      map[string]int{},
	}
	for _, in := range s.Design().InputSignals() {
		d.fieldIdx[in.Name] = in.Index
	}
	return d
}

// Apply drives one item: sets every mapped field, then runs Hold clock
// cycles (or a single settle when the DUV has no clock).
//
// Fields are applied in sorted name order: each Set re-evaluates the
// dependent combinational cone, and the transient states seen mid-apply
// feed the branch tracer — map order here would make the coverage
// event stream (and with it the whole campaign) run-to-run
// nondeterministic.
func (d *Driver) Apply(it *Item) error {
	names := make([]string, 0, len(it.Fields))
	for name := range it.Fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		idx, ok := d.fieldIdx[name]
		if !ok {
			return fmt.Errorf("uvm: item field %q does not match an input port", name)
		}
		sig := d.Sim.Design().Signals[idx]
		d.Sim.Set(idx, it.Fields[name].Resize(sig.Width))
	}
	if err := d.Sim.Settle(); err != nil {
		return err
	}
	hold := it.Hold
	if hold <= 0 {
		hold = 1
	}
	if d.Clock < 0 {
		d.Sim.AdvanceCycle()
		return nil
	}
	for i := 0; i < hold; i++ {
		if err := d.Sim.Tick(d.Clock); err != nil {
			return err
		}
	}
	return nil
}

// Monitor samples DUV outputs each cycle and owns the property checker
// (Figure 2, block 5; §4.9's violation detection).
type Monitor struct {
	BaseComponent
	Sim     sim.DUV
	Checker *props.Checker
	// Observations holds the most recent output sample per port.
	Observations map[string]logic.BV
	board        *Scoreboard
}

// NewMonitor builds a monitor with an optional property checker.
func NewMonitor(name string, s sim.DUV, chk *props.Checker) *Monitor {
	m := &Monitor{
		BaseComponent: NewBaseComponent(name),
		Sim:           s,
		Checker:       chk,
		Observations:  map[string]logic.BV{},
	}
	if chk != nil {
		chk.Bind(s)
	}
	s.OnCycle(func(sim.DUV) { m.sample() })
	return m
}

func (m *Monitor) sample() {
	for _, out := range m.Sim.Design().OutputSignals() {
		v := m.Sim.Get(out.Index)
		m.Observations[out.Name] = v
		if m.board != nil {
			m.board.Observe(out.Name, m.Sim.Cycle(), v)
		}
	}
}

// Violations returns property violations recorded so far.
func (m *Monitor) Violations() []props.Violation {
	if m.Checker == nil {
		return nil
	}
	return m.Checker.Violations()
}

// Observation is one recorded output sample.
type Observation struct {
	Signal string
	Cycle  uint64
	Value  logic.BV
}

// Scoreboard accumulates monitor observations and optionally compares
// them against a golden reference model (§5.5.3's extension to
// manufacturing-fault detection).
type Scoreboard struct {
	BaseComponent
	Observations []Observation
	// Golden, when set, predicts the expected value of a signal at a
	// cycle; mismatches (on fully defined values) are recorded.
	Golden     func(signal string, cycle uint64) (logic.BV, bool)
	Mismatches []Observation
	// Cap bounds retained observations (ring semantics).
	Cap int
}

// NewScoreboard builds an empty scoreboard.
func NewScoreboard(name string) *Scoreboard {
	return &Scoreboard{BaseComponent: NewBaseComponent(name), Cap: 4096}
}

// Observe records one output sample.
func (s *Scoreboard) Observe(signal string, cycle uint64, v logic.BV) {
	if s.Cap > 0 && len(s.Observations) >= s.Cap {
		s.Observations = s.Observations[1:]
	}
	s.Observations = append(s.Observations, Observation{Signal: signal, Cycle: cycle, Value: v})
	if s.Golden != nil {
		want, ok := s.Golden(signal, cycle)
		if ok && v.IsFullyDefined() && want.IsFullyDefined() && !v.Eq4(want) {
			s.Mismatches = append(s.Mismatches, Observation{Signal: signal, Cycle: cycle, Value: v})
		}
	}
}

// Agent bundles sequencer, driver and monitor (Figure 2, blocks 3-5).
type Agent struct {
	BaseComponent
	Sequencer *Sequencer
	Driver    *Driver
	Monitor   *Monitor
}

// Env is the UVM testbench environment (Figure 2, blocks 1-2): it
// connects the agent and scoreboard around a simulated DUV.
type Env struct {
	BaseComponent
	Sim         sim.DUV
	Agent       *Agent
	Scoreboard  *Scoreboard
	ClockInfo   sim.ResetInfo
	connected   bool
	resetCycles int
}

// EnvConfig parameterizes environment construction.
type EnvConfig struct {
	Seed int64
	// Properties to monitor.
	Properties []*props.Property
	// ResetCycles applied by Reset (default 2).
	ResetCycles int
	// SimBackend selects the DUV implementation: "interp" (default,
	// the event-driven four-state interpreter) or "compiled" (the
	// internal/simc closure-compiled backend). Both are observationally
	// identical, so campaign trajectories do not depend on the choice.
	SimBackend string
}

// NewBackend constructs a DUV for the design using the named backend
// ("", "interp", or "compiled").
func NewBackend(d *elab.Design, backend string) (sim.DUV, error) {
	switch backend {
	case "", "interp":
		return sim.New(d)
	case "compiled":
		return simc.New(d)
	default:
		return nil, fmt.Errorf("uvm: unknown sim backend %q (want interp or compiled)", backend)
	}
}

// NewEnv builds the standard environment around a design: detects the
// clock/reset tree (§4.3), builds the sequencer over the remaining
// input ports (§4.2), and wires driver, monitor and scoreboard.
func NewEnv(d *elab.Design, cfg EnvConfig) (*Env, error) {
	s, err := NewBackend(d, cfg.SimBackend)
	if err != nil {
		return nil, err
	}
	info := sim.DetectClockReset(d)
	exclude := map[string]bool{}
	if info.Clock >= 0 {
		exclude[d.Signals[info.Clock].Name] = true
	}
	if info.Reset >= 0 {
		exclude[d.Signals[info.Reset].Name] = true
	}
	env := &Env{
		BaseComponent: NewBaseComponent("env"),
		Sim:           s,
		ClockInfo:     info,
	}
	var chk *props.Checker
	if len(cfg.Properties) > 0 {
		chk = props.NewChecker(cfg.Properties...)
	}
	agent := &Agent{
		BaseComponent: NewBaseComponent("agent"),
		Sequencer:     SequencerForDesign(d, exclude, cfg.Seed),
		Driver:        NewDriver("driver", s, info.Clock),
		Monitor:       NewMonitor("monitor", s, chk),
	}
	agent.AddChild(agent.Sequencer)
	agent.AddChild(agent.Driver)
	agent.AddChild(agent.Monitor)
	env.Agent = agent
	env.Scoreboard = NewScoreboard("scoreboard")
	agent.Monitor.board = env.Scoreboard
	env.AddChild(agent)
	env.AddChild(env.Scoreboard)
	if err := RunPhases(env); err != nil {
		return nil, err
	}
	env.connected = true
	env.resetCycles = cfg.ResetCycles
	if env.resetCycles == 0 {
		env.resetCycles = 2
	}
	return env, nil
}

// Reset applies the reset sequence, leaving the DUV in its deterministic
// start state (Algorithm 1's deterministic test execution).
func (e *Env) Reset() error {
	return e.Sim.ApplyReset(e.ClockInfo, e.resetCycles)
}

// Step generates, drives and checks one item, returning it.
func (e *Env) Step() (*Item, error) {
	it := e.Agent.Sequencer.NextItem()
	if err := e.Agent.Driver.Apply(it); err != nil {
		return nil, err
	}
	return it, nil
}

// Violations exposes the monitor's recorded property violations.
func (e *Env) Violations() []props.Violation { return e.Agent.Monitor.Violations() }

// Package uvm is a Universal Verification Methodology-style testbench
// framework over the RTL simulator, mirroring the structure of the
// paper's Figure 2: a component tree with build/connect/run phases, a
// Sequencer generating constrained-random sequence items (backed by the
// SMT solver, as SymbFuzz's block 10 injects solved constraints), a
// Driver translating items into DUV pin wiggles, a Monitor sampling
// outputs and evaluating security properties, and a Scoreboard
// collecting observations (with an optional golden-reference comparator
// for the §5.5.3 manufacturing-fault extension).
package uvm

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/elab"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/smt"
)

// Phase identifies a UVM phase.
type Phase int

// Phases in execution order.
const (
	BuildPhase Phase = iota
	ConnectPhase
	RunPhase
)

// Component is a node in the UVM component tree.
type Component interface {
	Name() string
	// Phase runs one lifecycle phase; errors abort elaboration.
	Phase(p Phase) error
	Children() []Component
}

// BaseComponent provides naming and child management.
type BaseComponent struct {
	name     string
	children []Component
}

// NewBaseComponent names a component.
func NewBaseComponent(name string) BaseComponent { return BaseComponent{name: name} }

// Name returns the component name.
func (b *BaseComponent) Name() string { return b.name }

// Children returns registered child components.
func (b *BaseComponent) Children() []Component { return b.children }

// AddChild registers a child component.
func (b *BaseComponent) AddChild(c Component) { b.children = append(b.children, c) }

// Phase is a no-op by default.
func (b *BaseComponent) Phase(Phase) error { return nil }

// RunPhases walks the tree depth-first for each phase in order.
func RunPhases(root Component) error {
	for _, p := range []Phase{BuildPhase, ConnectPhase} {
		if err := walkPhase(root, p); err != nil {
			return err
		}
	}
	return nil
}

func walkPhase(c Component, p Phase) error {
	if err := c.Phase(p); err != nil {
		return fmt.Errorf("uvm: %s phase %d: %w", c.Name(), p, err)
	}
	for _, ch := range c.Children() {
		if err := walkPhase(ch, p); err != nil {
			return err
		}
	}
	return nil
}

// ---- sequence items ----

// FieldSpec describes one randomizable field of a sequence item,
// typically one DUV input port.
type FieldSpec struct {
	Name  string
	Width int
}

// Item is one transaction: a full assignment of the stimulus fields.
type Item struct {
	Fields map[string]logic.BV
	// Hold is how many cycles the driver keeps the item applied.
	Hold int
}

// Clone deep-copies an item.
func (it *Item) Clone() *Item {
	out := &Item{Fields: make(map[string]logic.BV, len(it.Fields)), Hold: it.Hold}
	for k, v := range it.Fields {
		out.Fields[k] = v
	}
	return out
}

// Key returns a deterministic content key for corpus deduplication.
func (it *Item) Key() string {
	names := make([]string, 0, len(it.Fields))
	for k := range it.Fields {
		names = append(names, k)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += n + "=" + it.Fields[n].Key() + ";"
	}
	return s
}

// Constraint builds a 1-bit SMT term over the item fields; the vars map
// provides a solver variable per field (Listing 3's UVM constraints).
type Constraint func(vars map[string]*smt.Term) *smt.Term

// Sequencer generates stimulus items: pure random bit-strings by
// default (§4.8), SMT-constrained randomization when constraints are
// installed, and exact replay when stimuli are pinned (checkpoint
// replay and solver-directed steering).
type Sequencer struct {
	BaseComponent
	Fields      []FieldSpec
	rng         *rand.Rand
	constraints []Constraint
	pinned      []*Item // exact next items, FIFO
	// Generated counts items produced (the "# of input vectors" metric).
	Generated uint64
	// Obs receives item-generation telemetry (seq_items counter and
	// constrained-randomization solve latency); nil disables.
	Obs *obs.Observer
}

// NewSequencer builds a sequencer over the given fields.
func NewSequencer(name string, fields []FieldSpec, seed int64) *Sequencer {
	return &Sequencer{
		BaseComponent: NewBaseComponent(name),
		Fields:        fields,
		rng:           rand.New(rand.NewSource(seed)),
	}
}

// SequencerForDesign derives the stimulus fields from a design's input
// ports, excluding the clock and reset which the harness drives.
func SequencerForDesign(d *elab.Design, exclude map[string]bool, seed int64) *Sequencer {
	var fields []FieldSpec
	for _, in := range d.InputSignals() {
		if exclude[in.Name] {
			continue
		}
		fields = append(fields, FieldSpec{Name: in.Name, Width: in.Width})
	}
	return NewSequencer("sequencer", fields, seed)
}

// AddConstraint installs a constraint applied to every generated item
// until ClearConstraints.
func (s *Sequencer) AddConstraint(c Constraint) { s.constraints = append(s.constraints, c) }

// ClearConstraints removes all installed constraints.
func (s *Sequencer) ClearConstraints() { s.constraints = nil }

// PinNext enqueues an exact item to be returned before any generation.
func (s *Sequencer) PinNext(it *Item) { s.pinned = append(s.pinned, it.Clone()) }

// PendingPinned reports how many exact items are queued.
func (s *Sequencer) PendingPinned() int { return len(s.pinned) }

// ClearPinned drops queued exact items (stale plans after a rollback).
func (s *Sequencer) ClearPinned() { s.pinned = nil }

// NextItem produces the next stimulus item.
func (s *Sequencer) NextItem() *Item {
	s.Generated++
	s.Obs.SeqItem()
	if len(s.pinned) > 0 {
		it := s.pinned[0]
		s.pinned = s.pinned[1:]
		return it
	}
	if len(s.constraints) == 0 {
		return s.randomItem()
	}
	if it := s.solveItem(); it != nil {
		return it
	}
	// Unsatisfiable constraints: fall back to random stimulus so the
	// fuzzing loop never stalls.
	return s.randomItem()
}

func (s *Sequencer) randomItem() *Item {
	it := &Item{Fields: map[string]logic.BV{}, Hold: 1}
	for _, f := range s.Fields {
		it.Fields[f.Name] = logic.Rand(f.Width, s.rng.Uint64)
	}
	return it
}

// solveItem runs the SMT solver with random decision polarity so that
// repeated calls explore diverse solutions of the same constraints.
func (s *Sequencer) solveItem() *Item {
	if s.Obs != nil {
		start := time.Now()
		defer func() { s.Obs.SeqSolve(int64(time.Since(start))) }()
	}
	sol := smt.NewSolver()
	sol.SetRand(rand.New(rand.NewSource(s.rng.Int63())))
	vars := map[string]*smt.Term{}
	for _, f := range s.Fields {
		vars[f.Name] = sol.Var(f.Name, f.Width)
	}
	for _, c := range s.constraints {
		sol.Assert(c(vars))
	}
	if sol.Solve() != smt.Sat {
		return nil
	}
	m := sol.Model()
	it := &Item{Fields: map[string]logic.BV{}, Hold: 1}
	for _, f := range s.Fields {
		v, ok := m[f.Name]
		if !ok {
			v = logic.Rand(f.Width, s.rng.Uint64)
		}
		it.Fields[f.Name] = v
	}
	return it
}

// Mutate flips a random number of bits in a parent item, the
// mutation-based half of seed generation (§4.8).
func (s *Sequencer) Mutate(parent *Item) *Item {
	it := parent.Clone()
	if len(s.Fields) == 0 {
		return it
	}
	flips := 1 + s.rng.Intn(4)
	for i := 0; i < flips; i++ {
		f := s.Fields[s.rng.Intn(len(s.Fields))]
		v := it.Fields[f.Name]
		if !v.Valid() {
			v = logic.Rand(f.Width, s.rng.Uint64)
		}
		bit := s.rng.Intn(f.Width)
		cur := v.Bit(bit)
		if cur == logic.L1 {
			it.Fields[f.Name] = v.WithBit(bit, logic.L0)
		} else {
			it.Fields[f.Name] = v.WithBit(bit, logic.L1)
		}
	}
	return it
}

package uvm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/logic"
	"repro/internal/props"
	"repro/internal/smt"
)

const duvSrc = `
module duv (input clk_i, input rst_ni, input [7:0] data, input [3:0] op,
            output reg [7:0] acc);
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) acc <= 8'd0;
    else begin
      case (op)
        4'd1: acc <= acc + data;
        4'd2: acc <= acc - data;
        4'd3: acc <= data;
        default: acc <= acc;
      endcase
    end
  end
endmodule`

func mkDesign(t *testing.T, src, top string) *elab.Design {
	t.Helper()
	ast, err := hdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(ast, top, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEnvConstruction(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Sequencer fields exclude clk/rst.
	names := map[string]bool{}
	for _, f := range env.Agent.Sequencer.Fields {
		names[f.Name] = true
	}
	if !names["data"] || !names["op"] {
		t.Errorf("fields = %v", names)
	}
	if names["clk_i"] || names["rst_ni"] {
		t.Errorf("clock/reset leaked into fields: %v", names)
	}
	if env.ClockInfo.Clock < 0 || env.ClockInfo.Reset < 0 {
		t.Errorf("clock/reset not detected: %+v", env.ClockInfo)
	}
}

func TestRandomStimulusRuns(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := env.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if env.Agent.Sequencer.Generated != 50 {
		t.Errorf("generated = %d", env.Agent.Sequencer.Generated)
	}
	// acc should be defined (reset happened) and outputs observed.
	if v, ok := env.Agent.Monitor.Observations["acc"]; !ok || !v.Valid() {
		t.Errorf("acc not observed: %v", v)
	}
	if len(env.Scoreboard.Observations) == 0 {
		t.Error("scoreboard empty")
	}
}

func TestConstrainedRandomization(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seq := env.Agent.Sequencer
	// Listing 3 style: constrain op to the ADD opcode.
	seq.AddConstraint(func(vars map[string]*smt.Term) *smt.Term {
		return smt.Eq(vars["op"], smt.ConstUint(4, 1))
	})
	seq.AddConstraint(func(vars map[string]*smt.Term) *smt.Term {
		return smt.Ult(vars["data"], smt.ConstUint(8, 100))
	})
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		it := seq.NextItem()
		if v, _ := it.Fields["op"].Uint64(); v != 1 {
			t.Fatalf("op = %d, want 1", v)
		}
		dv, _ := it.Fields["data"].Uint64()
		if dv >= 100 {
			t.Fatalf("data = %d violates constraint", dv)
		}
		seen[dv] = true
	}
	if len(seen) < 5 {
		t.Errorf("constrained randomization not diverse: %d distinct values", len(seen))
	}
	seq.ClearConstraints()
	it := seq.NextItem()
	if it == nil {
		t.Fatal("nil item after clearing constraints")
	}
}

func TestUnsatisfiableConstraintFallsBack(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seq := env.Agent.Sequencer
	seq.AddConstraint(func(vars map[string]*smt.Term) *smt.Term {
		return smt.And(smt.Eq(vars["op"], smt.ConstUint(4, 1)),
			smt.Eq(vars["op"], smt.ConstUint(4, 2)))
	})
	if it := seq.NextItem(); it == nil || !it.Fields["op"].Valid() {
		t.Fatal("sequencer must fall back to random stimulus")
	}
}

func TestPinnedReplay(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seq := env.Agent.Sequencer
	want := &Item{Fields: map[string]logic.BV{
		"data": logic.FromUint64(8, 0x55),
		"op":   logic.FromUint64(4, 3),
	}}
	seq.PinNext(want)
	if seq.PendingPinned() != 1 {
		t.Fatal("pin not queued")
	}
	got := seq.NextItem()
	if !got.Fields["data"].Eq4(want.Fields["data"]) || !got.Fields["op"].Eq4(want.Fields["op"]) {
		t.Errorf("replayed item mismatch: %+v", got.Fields)
	}
	if seq.PendingPinned() != 0 {
		t.Error("pin queue not drained")
	}
}

func TestDriverAppliesItem(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Reset(); err != nil {
		t.Fatal(err)
	}
	// Load acc with 0x42 via op=3 (load).
	it := &Item{Fields: map[string]logic.BV{
		"data": logic.FromUint64(8, 0x42),
		"op":   logic.FromUint64(4, 3),
	}}
	if err := env.Agent.Driver.Apply(it); err != nil {
		t.Fatal(err)
	}
	acc, _ := env.Sim.Peek("acc")
	if v, _ := acc.Uint64(); v != 0x42 {
		t.Errorf("acc = %v", acc)
	}
	// Unknown field errors.
	bad := &Item{Fields: map[string]logic.BV{"nope": logic.Zero(1)}}
	if err := env.Agent.Driver.Apply(bad); err == nil {
		t.Error("unknown field should error")
	}
}

func TestMonitorPropertyIntegration(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{
		Seed: 3,
		Properties: []*props.Property{{
			Name:       "acc_under_200",
			Expr:       props.Lt(props.Sig("acc"), props.U(8, 200)),
			DisableIff: props.Not(props.Sig("rst_ni")),
			CWE:        "CWE-000",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Reset(); err != nil {
		t.Fatal(err)
	}
	// Force acc to 250 via load.
	env.Agent.Sequencer.PinNext(&Item{Fields: map[string]logic.BV{
		"data": logic.FromUint64(8, 250),
		"op":   logic.FromUint64(4, 3),
	}})
	if _, err := env.Step(); err != nil {
		t.Fatal(err)
	}
	vs := env.Violations()
	if len(vs) != 1 || vs[0].Property != "acc_under_200" {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestScoreboardGolden(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Golden model that always predicts acc == 0: any defined non-zero
	// observation is a mismatch.
	env.Scoreboard.Golden = func(signal string, cycle uint64) (logic.BV, bool) {
		if signal != "acc" {
			return logic.BV{}, false
		}
		return logic.Zero(8), true
	}
	if err := env.Reset(); err != nil {
		t.Fatal(err)
	}
	env.Agent.Sequencer.PinNext(&Item{Fields: map[string]logic.BV{
		"data": logic.FromUint64(8, 9),
		"op":   logic.FromUint64(4, 3),
	}})
	_, _ = env.Step()
	_, _ = env.Step()
	if len(env.Scoreboard.Mismatches) == 0 {
		t.Error("golden mismatch not detected")
	}
}

func TestMutate(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	seq := env.Agent.Sequencer
	parent := seq.NextItem()
	child := seq.Mutate(parent)
	if child.Key() == parent.Key() {
		// Mutation flips at least one bit, so keys must differ.
		t.Error("mutation produced an identical item")
	}
	// Parent unchanged (clone semantics).
	reparent := parent.Clone()
	if parent.Key() != reparent.Key() {
		t.Error("clone changed the parent")
	}
}

func TestItemKeyDeterministic(t *testing.T) {
	a := &Item{Fields: map[string]logic.BV{
		"x": logic.FromUint64(4, 1),
		"y": logic.FromUint64(4, 2),
	}}
	b := &Item{Fields: map[string]logic.BV{
		"y": logic.FromUint64(4, 2),
		"x": logic.FromUint64(4, 1),
	}}
	if a.Key() != b.Key() {
		t.Error("key must be order independent")
	}
}

func TestCombinationalDUV(t *testing.T) {
	src := `module cmb (input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = a ^ b;
endmodule`
	d := mkDesign(t, src, "cmb")
	env, err := NewEnv(d, EnvConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if env.ClockInfo.Clock >= 0 {
		t.Fatalf("combinational design should have no clock: %+v", env.ClockInfo)
	}
	if err := env.Reset(); err != nil {
		t.Fatal(err)
	}
	env.Agent.Sequencer.PinNext(&Item{Fields: map[string]logic.BV{
		"a": logic.FromUint64(4, 0b1100),
		"b": logic.FromUint64(4, 0b1010),
	}})
	if _, err := env.Step(); err != nil {
		t.Fatal(err)
	}
	y, _ := env.Sim.Peek("y")
	if v, _ := y.Uint64(); v != 0b0110 {
		t.Errorf("y = %v", y)
	}
}

// phaseRecorder verifies the component tree walks phases in order.
type phaseRecorder struct {
	BaseComponent
	log *[]string
}

func (p *phaseRecorder) Phase(ph Phase) error {
	*p.log = append(*p.log, p.Name()+":"+phaseName(ph))
	return nil
}

func phaseName(p Phase) string {
	switch p {
	case BuildPhase:
		return "build"
	case ConnectPhase:
		return "connect"
	default:
		return "run"
	}
}

func TestPhaseOrdering(t *testing.T) {
	var log []string
	root := &phaseRecorder{BaseComponent: NewBaseComponent("root"), log: &log}
	child := &phaseRecorder{BaseComponent: NewBaseComponent("child"), log: &log}
	root.AddChild(child)
	if err := RunPhases(root); err != nil {
		t.Fatal(err)
	}
	want := []string{"root:build", "child:build", "root:connect", "child:connect"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("phase %d = %s, want %s", i, log[i], want[i])
		}
	}
	if len(root.Children()) != 1 {
		t.Error("child registration broken")
	}
}

type failingComponent struct{ BaseComponent }

func (f *failingComponent) Phase(p Phase) error {
	if p == ConnectPhase {
		return errBoom
	}
	return nil
}

var errBoom = fmt.Errorf("boom")

func TestPhaseErrorPropagates(t *testing.T) {
	root := &failingComponent{NewBaseComponent("bad")}
	err := RunPhases(root)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestItemHoldCycles(t *testing.T) {
	d := mkDesign(t, duvSrc, "duv")
	env, err := NewEnv(d, EnvConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Reset(); err != nil {
		t.Fatal(err)
	}
	before := env.Sim.Cycle()
	it := &Item{Fields: map[string]logic.BV{
		"data": logic.FromUint64(8, 1),
		"op":   logic.FromUint64(4, 1), // accumulate
	}, Hold: 5}
	if err := env.Agent.Driver.Apply(it); err != nil {
		t.Fatal(err)
	}
	if env.Sim.Cycle()-before != 5 {
		t.Errorf("hold applied %d cycles", env.Sim.Cycle()-before)
	}
	if v, _ := env.Sim.Peek("acc"); !v.Eq4(logic.FromUint64(8, 5)) {
		t.Errorf("acc = %v, want 5 after 5 held adds", v)
	}
}

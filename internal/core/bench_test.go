package core

import (
	"testing"
)

// benchEngine runs a full fuzzing campaign over a builtin benchmark and
// reports solver traffic as custom metrics, so
//
//	go test -bench Pruning -benchtime 3x ./internal/core
//
// compares solver dispatches with and without static reachability
// pruning on the same design and seed.
func benchEngine(b *testing.B, design string, disable bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchmarkDesign(b, design)
		b.StartTimer()
		eng, err := New(d, nil, Config{
			Interval: 50, Threshold: 2, MaxVectors: 4000, Seed: 7,
			UseSnapshots: true, DisablePruning: disable,
			ContinueAfterCoverage: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.SymbolicInvocations), "solves/op")
		b.ReportMetric(float64(rep.PrunedTargets), "pruned-nodes/op")
		b.ReportMetric(float64(rep.PrunedSolves), "pruned-solves/op")
	}
}

func BenchmarkEngineSoCPruned(b *testing.B)   { benchEngine(b, "opentitan_mini", false) }
func BenchmarkEngineSoCUnpruned(b *testing.B) { benchEngine(b, "opentitan_mini", true) }
func BenchmarkEngineArbPruned(b *testing.B)   { benchEngine(b, "bus_arb", false) }
func BenchmarkEngineArbUnpruned(b *testing.B) { benchEngine(b, "bus_arb", true) }

package core

// Cross-engine coordination hooks for parallel campaigns (internal/par).
//
// A parallel campaign runs N engines concurrently, each on its own
// elaborated design instance. Determinism for a fixed seed set —
// regardless of goroutine interleaving — is the hard requirement, so
// every cross-worker coupling that could steer a worker's trajectory is
// a pure function of (seed set, static design):
//
//   - The shared work queue is realized as static shard ownership
//     (ShardSpec): worker r owns edge (graph, id) iff a fixed hash maps
//     it to r. Two workers never burn solver time on the same frontier
//     target while their shards still have work; once a worker's entire
//     in-shard uncovered set is drained (a purely local decision), it
//     may target out-of-shard edges so the endgame is not serialized.
//   - The cross-worker constraint cache (PlanCache) is a memoization:
//     the solver seed for a cached query is canonical per PlanKey, so
//     any worker solving the same key produces the identical plan and
//     statistics. A cache hit therefore never changes a trajectory —
//     it only saves the solver wall time.
//
// The Sync hook is the only interleaving-sensitive channel, and it is
// restricted to publishing coverage and polling opt-in stop conditions.

import (
	"repro/internal/cfg"
	"repro/internal/smt"
)

// ShardSpec statically partitions the CFG edge space across workers.
// The zero value (Workers 0) disables sharding.
type ShardSpec struct {
	// Rank is this worker's index in [0, Workers).
	Rank int
	// Workers is the campaign's worker count; <= 1 disables sharding.
	Workers int
}

// Active reports whether sharding is in effect.
func (s ShardSpec) Active() bool { return s.Workers > 1 }

// Owns reports whether this shard owns edge eid of cluster graph gi.
// The assignment is a fixed mix hash so ownership is identical across
// workers and independent of any run-time state.
func (s ShardSpec) Owns(gi, eid int) bool {
	if !s.Active() {
		return true
	}
	h := uint64(gi)*0x9E3779B97F4A7C15 + uint64(eid)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return int(h%uint64(s.Workers)) == s.Rank
}

// PlanKey identifies one dependency-equation solve: the cluster graph,
// the target node, and a hash of the concrete query context (current
// in-cluster valuation plus the pinned out-of-cluster register values).
// Cluster graphs are built deterministically, so node and edge IDs —
// and therefore keys — agree across workers elaborating the same
// design.
type PlanKey struct {
	Graph int
	To    int
	Ctx   uint64
}

// CachedPlan is one memoized solve result: the plan (nil for unsat)
// plus the producing dispatch's solver statistics, which consumers
// account identically to a live solve. OriginWorker/OriginSpan name
// the lane and solve span that produced the entry, so a hit on
// another rank links back to the originating solve in the merged
// trace. The origin fields are telemetry-only — they never influence
// a trajectory — so the benign last-write-wins race on Store (every
// writer stores an identical plan under canonical per-key seeds) at
// worst swaps one valid attribution for another.
type CachedPlan struct {
	Plan  *cfg.StepPlan
	Stats smt.SolveStats
	// SlicedVars is the net solver-variable saving of the producing
	// sliced dispatch and Infeasible marks a statically refuted target;
	// both ride in the entry so a cache hit increments the consumer's
	// report exactly as the original solve did, keeping reports
	// independent of the hit/miss split.
	SlicedVars   int
	Infeasible   bool
	OriginWorker int
	OriginSpan   string
}

// PlanCache shares solved step plans across engines. Implementations
// must be safe for concurrent use. Lookup returns the cached result
// and whether it was present; Store publishes a result (last write
// wins — with canonical per-key seeds every writer stores an identical
// value, so the race is benign by construction).
type PlanCache interface {
	Lookup(PlanKey) (CachedPlan, bool)
	Store(PlanKey, CachedPlan)
}

// fnvOffset/fnvPrime are the FNV-1a constants used for context hashing.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvInt(h uint64, v int) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(u>>(8*i)))
	}
	return h
}

package core

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/elab"
)

func benchmarkDesign(t testing.TB, name string) *elab.Design {
	t.Helper()
	bm, ok := designs.FindBenchmark(name)
	if !ok {
		t.Fatalf("no builtin benchmark %q", name)
	}
	d, err := bm.Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestEnginePrunesUnreachableNodes drives the engine over the bus_arb
// benchmark, whose latched grant register makes the CFG enumerate a
// grant valuation (gnt=3) the arbiter can never produce. The static
// reachability pass must prove it dead and exclude it from guidance.
func TestEnginePrunesUnreachableNodes(t *testing.T) {
	eng, err := New(benchmarkDesign(t, "bus_arb"), nil, Config{
		Interval: 40, Threshold: 2, MaxVectors: 4000, Seed: 11, UseSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrunedTargets == 0 {
		t.Fatalf("expected statically pruned CFG nodes on bus_arb: %s", rep)
	}
	if rep.PrunedSolves == 0 {
		t.Errorf("pruned nodes never suppressed a solver dispatch: %s", rep)
	}
}

// TestEnginePruningDisabled is the ablation: with DisablePruning the
// unreachable nodes stay in the target set and nothing is pruned.
func TestEnginePruningDisabled(t *testing.T) {
	eng, err := New(benchmarkDesign(t, "bus_arb"), nil, Config{
		Interval: 40, Threshold: 2, MaxVectors: 4000, Seed: 11,
		UseSnapshots: true, DisablePruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrunedTargets != 0 || rep.PrunedSolves != 0 {
		t.Fatalf("ablation run must not prune: %s", rep)
	}
}

// TestEnginePruningPreservesCoverage checks pruning never costs
// reachable coverage: on the deep-FSM fixture (no unreachable nodes)
// both variants cover the same edge set.
func TestEnginePruningPreservesCoverage(t *testing.T) {
	run := func(disable bool) *Report {
		eng, err := New(deepDesign(t), nil, Config{
			Interval: 50, Threshold: 2, MaxVectors: 50_000, Seed: 3,
			UseSnapshots: true, DisablePruning: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	with, without := run(false), run(true)
	if with.EdgesCovered != without.EdgesCovered || with.EdgesTotal != without.EdgesTotal {
		t.Errorf("pruning changed coverage: with=%s without=%s", with, without)
	}
}

package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cov"
	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/props"
)

// A deep FSM with a narrow trigger chain: random fuzzing stalls on the
// magic-value comparisons, while symbolic guidance solves them. The bug
// (st == 5 with leak asserted) hides behind three exact 8-bit matches.
const deepSrc = `
module deep (input clk_i, input rst_ni, input [7:0] k, output reg [2:0] st,
             output reg leak);
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      st <= 3'd0;
      leak <= 1'b0;
    end else begin
      case (st)
        3'd0: if (k == 8'hA7) st <= 3'd1;
        3'd1: if (k == 8'h3C) st <= 3'd2;
              else st <= 3'd0;
        3'd2: if (k == 8'h5E) st <= 3'd3;
              else st <= 3'd0;
        3'd3: st <= 3'd4;
        3'd4: begin
          st <= 3'd5;
          leak <= 1'b1;
        end
        3'd5: st <= 3'd0;
        default: st <= 3'd0;
      endcase
    end
  end
endmodule`

func deepDesign(t *testing.T) *elab.Design {
	t.Helper()
	ast, err := hdl.Parse(deepSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(ast, "deep", nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func leakProp() *props.Property {
	return &props.Property{
		Name:       "no_leak",
		Expr:       props.Not(props.Sig("leak")),
		DisableIff: props.Not(props.Sig("rst_ni")),
		CWE:        "CWE-1342",
	}
}

func TestEngineFindsDeepBug(t *testing.T) {
	eng, err := New(deepDesign(t), []*props.Property{leakProp()}, Config{
		Interval:     50,
		Threshold:    2,
		MaxVectors:   20_000,
		Seed:         1,
		UseSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Fatalf("deep bug not found: %s", rep)
	}
	if rep.Bugs[0].Property != "no_leak" || rep.Bugs[0].Vectors == 0 {
		t.Errorf("bug record = %+v", rep.Bugs[0])
	}
	if rep.SymbolicInvocations == 0 {
		t.Error("the deep chain requires symbolic guidance")
	}
	if rep.FinalPoints == 0 || len(rep.Curve) == 0 {
		t.Errorf("coverage not recorded: %s", rep)
	}
}

func TestEngineCoversFullGraph(t *testing.T) {
	eng, err := New(deepDesign(t), nil, Config{
		Interval:     50,
		Threshold:    2,
		MaxVectors:   50_000,
		Seed:         3,
		UseSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdgesCovered < rep.EdgesTotal {
		t.Errorf("edges %d/%d not fully covered: %s", rep.EdgesCovered, rep.EdgesTotal, rep)
	}
	// Termination on full coverage, not budget exhaustion.
	if rep.Vectors >= 50_000 {
		t.Errorf("budget exhausted before full coverage: %s", rep)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() *Report {
		eng, err := New(deepDesign(t), []*props.Property{leakProp()}, Config{
			Interval: 40, Threshold: 2, MaxVectors: 5000, Seed: 99, UseSnapshots: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Vectors != b.Vectors || a.FinalPoints != b.FinalPoints ||
		len(a.Bugs) != len(b.Bugs) || a.SymbolicInvocations != b.SymbolicInvocations {
		t.Errorf("non-deterministic runs:\n a=%s\n b=%s", a, b)
	}
}

func TestEngineWithoutSymbolicIsWorse(t *testing.T) {
	run := func(disable bool) *Report {
		eng, err := New(deepDesign(t), nil, Config{
			Interval: 50, Threshold: 2, MaxVectors: 8000, Seed: 7,
			UseSnapshots: true, DisableSymbolic: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	with := run(false)
	without := run(true)
	if with.EdgesCovered < without.EdgesCovered {
		t.Errorf("symbolic guidance should not reduce edge coverage: with=%s without=%s", with, without)
	}
	if without.SymbolicInvocations != 0 {
		t.Error("ablation must not invoke the solver")
	}
}

func TestEngineReplayMode(t *testing.T) {
	eng, err := New(deepDesign(t), nil, Config{
		Interval: 50, Threshold: 2, MaxVectors: 20_000, Seed: 5,
		UseSnapshots: false, // reset + input-prefix replay
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdgesCovered == 0 {
		t.Errorf("replay mode made no progress: %s", rep)
	}
}

func TestEngineVCDMode(t *testing.T) {
	eng, err := New(deepDesign(t), nil, Config{
		Interval: 30, Threshold: 2, MaxVectors: 600, Seed: 2,
		UseSnapshots: true, DumpVCD: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VCDBytes == 0 {
		t.Error("VCD mode produced no dump bytes")
	}
}

func TestEngineExtraMonitor(t *testing.T) {
	d := deepDesign(t)
	eng, err := New(d, nil, Config{
		Interval: 30, Threshold: 2, MaxVectors: 1000, Seed: 2, UseSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := cov.NewMuxCov(0)
	eng.AttachMonitor(mux)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if mux.Points() == 0 {
		t.Error("extra monitor saw no events")
	}
}

func TestEngineCheckpointsTaken(t *testing.T) {
	eng, err := New(deepDesign(t), nil, Config{
		Interval: 50, Threshold: 2, MaxVectors: 10_000, Seed: 4, UseSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.GraphStats.Checkpoints == 0 {
		t.Skip("design has no static checkpoints")
	}
	if rep.CheckpointsTaken == 0 {
		t.Errorf("no checkpoints recorded: %s", rep)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Interval != 300 || c.Threshold != 3 || c.ResetCycles != 2 {
		t.Errorf("defaults = %+v", c)
	}
}

// TestEngineInterrupt pins the graceful-shutdown contract: cancelling
// the run context stops the engine promptly and yields a valid partial
// report with Interrupted set — the counters agree with a shorter
// fixed-budget run rather than being torn mid-interval.
func TestEngineInterrupt(t *testing.T) {
	eng, err := New(deepDesign(t), []*props.Property{leakProp()},
		Config{Interval: 50, Threshold: 2, MaxVectors: 1_000_000, Seed: 5,
			UseSnapshots: true, ContinueAfterCoverage: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the engine must notice before fuzzing
	rep, err := eng.RunContext(ctx)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if !rep.Interrupted {
		t.Fatal("report of a cancelled run must carry Interrupted")
	}
	if rep.Vectors >= 1_000_000 {
		t.Fatalf("engine ran to budget despite cancellation: %d vectors", rep.Vectors)
	}

	// A pre-cancelled context round-trips through the report JSON with
	// the interrupted marker visible to downstream consumers.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"interrupted":true`) {
		t.Fatalf("serialized report lacks interrupted marker: %s", data)
	}

	// An uncancelled context leaves the flag unset.
	eng2, err := New(deepDesign(t), []*props.Property{leakProp()},
		Config{Interval: 50, Threshold: 2, MaxVectors: 500, Seed: 5, UseSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := eng2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Interrupted {
		t.Fatal("uncancelled run must not be marked interrupted")
	}

	// Cancellation mid-run: stop after the first interval boundary via
	// the Sync hook, then check the engine honors ctx within the loop.
	ctx3, cancel3 := context.WithCancel(context.Background())
	defer cancel3()
	boundaries := 0
	eng3, err := New(deepDesign(t), []*props.Property{leakProp()},
		Config{Interval: 50, Threshold: 2, MaxVectors: 1_000_000, Seed: 5,
			UseSnapshots: true, ContinueAfterCoverage: true,
			Sync: func(*cov.CFGCov, *Report) bool {
				boundaries++
				if boundaries == 2 {
					cancel3()
				}
				return false
			}})
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := eng3.RunContext(ctx3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Interrupted {
		t.Fatal("mid-run cancellation must mark the report interrupted")
	}
	if rep3.Vectors >= 1_000_000 || rep3.Vectors == 0 {
		t.Fatalf("mid-run cancellation stopped at %d vectors", rep3.Vectors)
	}
}

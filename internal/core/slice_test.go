package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestEngineSlicingAccounts drives the engine with slicing on (the
// default) and checks the report carries the slicing counters: on
// bus_arb the multi-cluster context guarantees nonzero savings.
func TestEngineSlicingAccounts(t *testing.T) {
	eng, err := New(benchmarkDesign(t, "bus_arb"), nil, Config{
		Interval: 40, Threshold: 2, MaxVectors: 4000, Seed: 11, UseSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SymbolicInvocations > 0 && rep.SlicedVars == 0 {
		t.Errorf("symbolic dispatches ran but no variables were sliced: %s", rep)
	}
}

// TestEngineSlicingDisabledIdentical is the ablation gate: with
// DisableSlicing the engine must take the exact pre-slicing path, and
// the report must serialize without any slicing fields at all — byte
// identical to a build that never had them.
func TestEngineSlicingDisabledIdentical(t *testing.T) {
	run := func() *Report {
		eng, err := New(benchmarkDesign(t, "bus_arb"), nil, Config{
			Interval: 40, Threshold: 2, MaxVectors: 4000, Seed: 11,
			UseSnapshots: true, DisableSlicing: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.SlicedVars != 0 || rep.InfeasibleTargets != 0 {
		t.Fatalf("ablation run must not slice: %s", rep)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"SlicedVars", "InfeasibleTargets"} {
		if strings.Contains(string(raw), field) {
			t.Errorf("ablation report JSON must omit %s entirely", field)
		}
	}
	// Same-seed determinism holds under the ablation too.
	again := run()
	if rep.String() != again.String() || rep.FinalPoints != again.FinalPoints {
		t.Errorf("ablation run not reproducible:\n%s\nvs\n%s", rep, again)
	}
}

// TestEngineSlicingPreservesTrajectory checks the load-bearing
// equivalence: slicing only shrinks solver queries, so the sliced and
// unsliced campaigns — same seed, same design — must walk identical
// trajectories and produce identical coverage and bug sets.
func TestEngineSlicingPreservesTrajectory(t *testing.T) {
	run := func(disable bool) *Report {
		eng, err := New(benchmarkDesign(t, "bus_arb"), nil, Config{
			Interval: 40, Threshold: 2, MaxVectors: 4000, Seed: 11,
			UseSnapshots: true, DisableSlicing: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	sliced, full := run(false), run(true)
	if sliced.Vectors != full.Vectors || sliced.Cycles != full.Cycles {
		t.Errorf("trajectory diverged: sliced %d vec / %d cyc, unsliced %d vec / %d cyc",
			sliced.Vectors, sliced.Cycles, full.Vectors, full.Cycles)
	}
	if sliced.FinalPoints != full.FinalPoints ||
		sliced.EdgesCovered != full.EdgesCovered ||
		sliced.NodesCovered != full.NodesCovered {
		t.Errorf("coverage diverged: sliced %s vs unsliced %s", sliced, full)
	}
	if len(sliced.Bugs) != len(full.Bugs) {
		t.Errorf("bug sets diverged: %d vs %d", len(sliced.Bugs), len(full.Bugs))
	}
	if sliced.SolvedPlans != full.SolvedPlans {
		t.Errorf("solved plans diverged: %d vs %d", sliced.SolvedPlans, full.SolvedPlans)
	}
}

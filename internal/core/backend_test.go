package core

import (
	"encoding/json"
	"testing"

	"repro/internal/designs"
	"repro/internal/props"
)

// runCampaignJSON runs one campaign and returns its Report as JSON.
func runCampaignJSON(t *testing.T, b *designs.Benchmark, backend string, seed int64) []byte {
	t.Helper()
	d, err := b.Elaborate()
	if err != nil {
		t.Fatalf("elaborate %s: %v", b.Name, err)
	}
	eng, err := New(d, b.Properties, Config{
		Interval: 40, Threshold: 2, MaxVectors: 1500, Seed: seed,
		UseSnapshots: true, SimBackend: backend,
	})
	if err != nil {
		t.Fatalf("engine %s/%s: %v", b.Name, backend, err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatalf("run %s/%s: %v", b.Name, backend, err)
	}
	// Wall-clock attribution is the one part of a Report that is
	// environment-dependent rather than trajectory-dependent; zero it
	// so the comparison is over the deterministic campaign content.
	rep.Timings.TotalNS = 0
	rep.Timings.FuzzNS = 0
	rep.Timings.SymbolicNS = 0
	rep.Timings.RollbackNS = 0
	rep.Timings.VCDNS = 0
	rep.Timings.Solve.BlastNS = 0
	rep.Timings.Solve.CDCLNS = 0
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestCampaignTrajectoryBackendNeutral is the engine-level parity
// obligation: a campaign with the same seed must produce a
// byte-identical Report whether the DUV runs on the interpreter or the
// compiled backend — same coverage trajectory, same symbolic
// invocations, same bugs at the same vector counts. Every builtin
// design is checked.
func TestCampaignTrajectoryBackendNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign sweep is not short")
	}
	for _, b := range designs.AllBenchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			interp := runCampaignJSON(t, b, "interp", 11)
			compiled := runCampaignJSON(t, b, "compiled", 11)
			if string(interp) != string(compiled) {
				t.Errorf("campaign report differs between backends\ninterp:   %s\ncompiled: %s", interp, compiled)
			}
		})
	}
}

// TestEngineRejectsUnknownBackend pins the error path of the knob.
func TestEngineRejectsUnknownBackend(t *testing.T) {
	d := deepDesign(t)
	_, err := New(d, []*props.Property{leakProp()}, Config{
		Interval: 40, Threshold: 2, MaxVectors: 100, Seed: 1, SimBackend: "verilator",
	})
	if err == nil {
		t.Fatal("expected an error for an unknown sim backend")
	}
}

package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/props"
)

// obsClock is a deterministic obs.Options.Now: each call advances 1µs,
// so event timestamps depend only on the event sequence, which is
// seed-deterministic.
func obsClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1_000
		return t
	}
}

// runTraced runs the deep campaign with a JSONL tracer attached and
// returns the report plus the raw trace bytes.
func runTraced(t *testing.T, seed int64) (*Report, []byte, obs.StatusSnapshot) {
	t.Helper()
	var buf bytes.Buffer
	o := obs.New(obs.Options{Tracer: obs.NewJSONLTracer(&buf), Now: obsClock()})
	eng, err := New(deepDesign(t), []*props.Property{leakProp()}, Config{
		Interval:     50,
		Threshold:    2,
		MaxVectors:   20_000,
		Seed:         seed,
		UseSnapshots: true,
		Obs:          o,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	return rep, buf.Bytes(), o.Snapshot()
}

func TestEngineTraceReconcilesWithReport(t *testing.T) {
	rep, trace, snap := runTraced(t, 1)

	sum, err := obs.ValidateTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("schema-invalid trace: %v", err)
	}
	// The campaign_end event must agree with the report — the acceptance
	// contract for offline trace analysis.
	if sum.FinalPoints != rep.FinalPoints {
		t.Errorf("trace final coverage_points = %d, report FinalPoints = %d", sum.FinalPoints, rep.FinalPoints)
	}
	if sum.FinalVectors != rep.Vectors {
		t.Errorf("trace final vectors = %d, report Vectors = %d", sum.FinalVectors, rep.Vectors)
	}
	if sum.Bugs != len(rep.Bugs) {
		t.Errorf("trace bugs = %d, report bugs = %d", sum.Bugs, len(rep.Bugs))
	}
	// The deep chain forces every phase of Algorithm 1, so the trace
	// must contain the full event vocabulary for the guided path.
	for _, typ := range []string{
		obs.EvIntervalStart, obs.EvIntervalEnd, obs.EvStagnation,
		obs.EvSolverDisp, obs.EvPlanApplied, obs.EvCheckpoint, obs.EvBugFound,
	} {
		if sum.ByType[typ] == 0 {
			t.Errorf("no %q events in trace (by_type = %v)", typ, sum.ByType)
		}
	}
	if sum.ByType[obs.EvSolverDisp] != rep.Timings.Solve.Dispatches {
		t.Errorf("trace solver_dispatch = %d, Timings.Solve.Dispatches = %d",
			sum.ByType[obs.EvSolverDisp], rep.Timings.Solve.Dispatches)
	}

	// Metrics snapshot reconciles with both trace and report.
	m := snap.Metrics
	if m.Gauges["coverage_points"] != int64(rep.FinalPoints) {
		t.Errorf("coverage_points gauge = %d, want %d", m.Gauges["coverage_points"], rep.FinalPoints)
	}
	if m.Gauges["vectors_applied"] != int64(rep.Vectors) {
		t.Errorf("vectors_applied gauge = %d, want %d", m.Gauges["vectors_applied"], rep.Vectors)
	}
	if m.Counters["bugs_found"] != int64(len(rep.Bugs)) {
		t.Errorf("bugs_found counter = %d, want %d", m.Counters["bugs_found"], len(rep.Bugs))
	}
	if m.Counters["solver_sat"]+m.Counters["solver_unsat"] != m.Counters["solver_dispatches"] {
		t.Errorf("sat %d + unsat %d != dispatches %d",
			m.Counters["solver_sat"], m.Counters["solver_unsat"], m.Counters["solver_dispatches"])
	}
	if m.Counters["solver_conflicts"] != rep.Timings.Solve.Conflicts {
		t.Errorf("solver_conflicts = %d, Timings %d", m.Counters["solver_conflicts"], rep.Timings.Solve.Conflicts)
	}
	if len(snap.Curve) == 0 || snap.Curve[len(snap.Curve)-1].Points != rep.FinalPoints {
		t.Errorf("live curve = %v, want final points %d", snap.Curve, rep.FinalPoints)
	}

	// Coarse phase timings are collected even without special flags.
	ti := rep.Timings
	if ti.TotalNS <= 0 || ti.FuzzNS <= 0 || ti.SymbolicNS <= 0 {
		t.Errorf("phase timings not collected: %+v", ti)
	}
	if ti.FuzzNS+ti.SymbolicNS > ti.TotalNS {
		t.Errorf("phase times exceed total: fuzz %d + symbolic %d > total %d",
			ti.FuzzNS, ti.SymbolicNS, ti.TotalNS)
	}
	if ti.CheckpointBytes <= 0 {
		t.Errorf("snapshot mode recorded no checkpoint bytes: %+v", ti)
	}
}

// normalizeTrace zeroes the real-wall-clock fields (dur_ns, blast_ns,
// cdcl_ns) that legitimately vary between runs; with the injected
// deterministic clock everything else — event sequence, timestamps,
// vectors, coverage, CFG locations, SAT search counters — must be
// byte-identical for a fixed seed.
func normalizeTrace(t *testing.T, raw []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		ev.DurNS, ev.BlastNS, ev.SolveNS = 0, 0, 0
		b, err := json.Marshal(&ev)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

func TestEngineTraceGoldenDeterministic(t *testing.T) {
	repA, traceA, _ := runTraced(t, 1)
	repB, traceB, _ := runTraced(t, 1)
	if repA.Vectors != repB.Vectors || repA.FinalPoints != repB.FinalPoints {
		t.Fatalf("runs diverged: %d/%d vs %d/%d vectors/points",
			repA.Vectors, repA.FinalPoints, repB.Vectors, repB.FinalPoints)
	}
	a, b := normalizeTrace(t, traceA), normalizeTrace(t, traceB)
	if !bytes.Equal(a, b) {
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(la) && i < len(lb); i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("traces diverge at line %d:\n  run A: %s\n  run B: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("trace lengths diverge: %d vs %d lines", len(la), len(lb))
	}
}

// TestEngineObsDoesNotPerturbCampaign pins that attaching telemetry
// cannot change campaign behaviour: the same seed with and without an
// observer must produce identical coverage and bug results.
func TestEngineObsDoesNotPerturbCampaign(t *testing.T) {
	plain, err := New(deepDesign(t), []*props.Property{leakProp()}, Config{
		Interval: 50, Threshold: 2, MaxVectors: 20_000, Seed: 1, UseSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	repPlain, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	repObs, _, _ := runTraced(t, 1)
	if repPlain.Vectors != repObs.Vectors || repPlain.FinalPoints != repObs.FinalPoints ||
		len(repPlain.Bugs) != len(repObs.Bugs) {
		t.Errorf("observer perturbed the campaign: %d/%d/%d vs %d/%d/%d (vectors/points/bugs)",
			repPlain.Vectors, repPlain.FinalPoints, len(repPlain.Bugs),
			repObs.Vectors, repObs.FinalPoints, len(repObs.Bugs))
	}
}

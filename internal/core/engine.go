// Package core implements the SymbFuzz engine: Algorithm 1 of the
// paper. A UVM environment drives the DUV with constrained-random
// stimulus in intervals of I cycles; a CFG coverage monitor tracks
// control-register interaction tuples; when coverage stagnates for Th
// intervals, the engine identifies the last covered state, rolls back to
// the nearest checkpoint with unexplored out-edges (backtracking the CFG
// when necessary), solves the dependency equations for an unexplored
// transition with the SMT solver, and pins the solved stimulus into the
// UVM sequencer (§4.5–§4.8). Property violations are logged with their
// input-vector counts into the bug report (§4.9).
package core

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/cov"
	"repro/internal/elab"
	"repro/internal/lint"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/smt"
	"repro/internal/uvm"
	"repro/internal/vcd"
)

// Config are the user-facing fuzzing parameters of Algorithm 1.
type Config struct {
	// Interval is I: clock cycles simulated per round before coverage
	// is logged (paper default 300).
	Interval int
	// Threshold is Th: stagnant rounds before symbolic execution.
	Threshold int
	// MaxVectors bounds the total input vectors applied.
	MaxVectors uint64
	// Seed drives all randomness; equal seeds give equal runs.
	Seed int64
	// ResetCycles for the reset sequence (default 2).
	ResetCycles int
	// SimBackend selects the DUV implementation: "" or "interp" for
	// the event-driven four-state interpreter, "compiled" for the
	// closure-compiled backend (internal/simc). The backends are
	// observationally identical, so a campaign's Report does not depend
	// on the choice — only its wall-clock does.
	SimBackend string
	// CFG options for static graph construction.
	CFG cfg.Options
	// UseSnapshots selects fast snapshot rollback; when false the
	// engine resets and replays the recorded input prefix (§4.5's
	// sequence replay; the ablation's slow path).
	UseSnapshots bool
	// DisableSymbolic turns off the guidance stage (pure fuzzing
	// ablation).
	DisableSymbolic bool
	// DumpVCD routes each interval's trace through a VCD write+read
	// round trip, mirroring Algorithm 1's dump-file scan.
	DumpVCD bool
	// CurveStride samples the coverage curve every N vectors
	// (default: Interval).
	CurveStride uint64
	// ContinueAfterCoverage keeps fuzzing until the vector budget even
	// once every static CFG edge is covered (Algorithm 1 stops at full
	// coverage; bug-hunting campaigns keep going).
	ContinueAfterCoverage bool
	// DisablePruning turns off static reachability pruning: without it
	// the engine drops CFG target nodes whose register valuations the
	// lint pass proved unreachable, before any solver dispatch (the
	// ablation keeps them and lets the solver fail on each).
	DisablePruning bool
	// DisableSlicing turns off cone-of-influence slicing: every solver
	// dispatch declares and bit-blasts the full dependency equation
	// instead of the target's folded cone, and statically infeasible
	// targets are handed to the solver instead of being refuted for
	// free (the ablation mirroring DisablePruning).
	DisableSlicing bool
	// Obs receives campaign telemetry: phase metrics, the typed event
	// trace, and live status gauges. nil disables (the fast path —
	// coarse Report.Timings are still collected).
	Obs *obs.Observer
	// Prof receives the campaign cost ledger: per-IR-process eval
	// counts and per-CFG-target solver effort. nil disables; the
	// profiler is strictly observational, so enabling it never changes
	// the campaign trajectory or the report.
	Prof *prof.Profiler

	// Shard restricts solver-guided edge targeting to this worker's
	// statically owned slice of the CFG edge space (parallel campaigns;
	// see coord.go). The zero value disables sharding.
	Shard ShardSpec
	// PlanCache shares solved step plans across concurrent engines.
	// When set, solver seeds become canonical per query (derived from
	// SharedSeed and the PlanKey) so a cache hit returns exactly what a
	// live solve would have produced. nil disables.
	PlanCache PlanCache
	// SharedSeed is the campaign-wide base seed used for canonical
	// cache-query seeding; 0 falls back to Seed. Only consulted when
	// PlanCache is set.
	SharedSeed int64
	// Sync, when set, is called at every interval boundary with the
	// live coverage monitor and the in-progress report (the engine is
	// quiescent for the duration of the call). Returning true stops the
	// campaign. Parallel campaigns use it to publish coverage deltas to
	// the global frontier and poll stop conditions.
	Sync func(*cov.CFGCov, *Report) bool
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 300
	}
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.ResetCycles == 0 {
		c.ResetCycles = 2
	}
	if c.MaxVectors == 0 {
		c.MaxVectors = 100_000
	}
	if c.CurveStride == 0 {
		c.CurveStride = uint64(c.Interval)
	}
	return c
}

// checkpoint is a revisitable CFG node of one cluster graph (§4.5).
type checkpoint struct {
	graph  int
	node   int
	snap   *sim.Snapshot
	prefix []*uvm.Item
}

// CurvePoint is one sample of the coverage curve (Figure 4a).
type CurvePoint struct {
	Vectors uint64
	Points  int
}

// BugRecord is one detected property violation with the number of input
// vectors applied when it fired (Table 1, column 6).
type BugRecord struct {
	props.Violation
	Vectors uint64
}

// SolveTotals aggregates per-dispatch solver statistics over a campaign
// (Table 3's constraint counts; the §5 solve-latency breakdown).
type SolveTotals struct {
	Dispatches int
	Sat        int
	Unsat      int

	Conflicts    int64
	Decisions    int64
	Propagations int64
	// Clauses / Vars sum the formula size at each dispatch.
	Clauses int64
	Vars    int64

	// BlastNS / CDCLNS split solve wall time between Tseitin
	// bit-blasting and the CDCL search.
	BlastNS int64
	CDCLNS  int64
}

func (t *SolveTotals) add(st smt.SolveStats) {
	t.Dispatches++
	if st.Outcome == smt.Sat {
		t.Sat++
	} else {
		t.Unsat++
	}
	t.Conflicts += st.Conflicts
	t.Decisions += st.Decisions
	t.Propagations += st.Propagations
	t.Clauses += int64(st.Clauses)
	t.Vars += int64(st.Vars)
	t.BlastNS += st.BlastNS
	t.CDCLNS += st.SolveNS
}

// MeanSolveNS is the mean wall time of one solver dispatch.
func (t SolveTotals) MeanSolveNS() int64 {
	if t.Dispatches == 0 {
		return 0
	}
	return (t.BlastNS + t.CDCLNS) / int64(t.Dispatches)
}

// Timings breaks a campaign's wall time down by engine phase — where
// Fig. 4's vectors went — plus the solver aggregate and checkpoint
// memory cost. Collected unconditionally (one clock read per phase
// boundary); the fine-grained histograms live on the optional Observer.
type Timings struct {
	// TotalNS is the whole Run call.
	TotalNS int64
	// FuzzNS is time spent applying constrained-random vectors
	// (Algorithm 1 line 8), including checkpoint capture.
	FuzzNS int64
	// SymbolicNS is time in the guidance stage (lines 14–22):
	// solver dispatches, plan application and backtracking.
	SymbolicNS int64
	// RollbackNS is checkpoint re-entry cost (snapshot restore or
	// reset+replay), a subset of SymbolicNS.
	RollbackNS int64
	// VCDNS is the dump-file write+read round trip (line 9).
	VCDNS int64

	// CheckpointBytes sums the architectural bytes of every snapshot
	// retained by the checkpoint store (0 in replay mode).
	CheckpointBytes int64

	// Solve aggregates the per-dispatch SMT statistics.
	Solve SolveTotals
}

// Report is Algorithm 1's output R plus run statistics.
type Report struct {
	Bugs        []BugRecord
	Curve       []CurvePoint
	FinalPoints int
	Vectors     uint64
	Cycles      uint64

	NodesCovered, NodesTotal int
	EdgesCovered, EdgesTotal int
	TupleCount               int

	SymbolicInvocations int
	SolvedPlans         int
	Rollbacks           int
	Replays             int
	CheckpointsTaken    int
	VCDBytes            int

	// SolveCacheHits / SolveCacheMisses count shared plan-cache
	// consultations (0 unless Config.PlanCache is set). The sum is
	// deterministic for a fixed seed set; the split between hit and
	// miss depends on which worker solved a key first and is the one
	// scheduling artifact the report carries.
	SolveCacheHits   int
	SolveCacheMisses int

	// PrunedTargets counts CFG nodes statically proven unreachable by
	// the lint pass's value-domain facts and excluded from guidance.
	PrunedTargets int
	// PrunedSolves counts solver dispatches avoided because the ranked
	// edge list dropped edges into pruned targets.
	PrunedSolves int

	// SlicedVars sums, over all dispatches, the solver variables the
	// cone-of-influence slice eliminated relative to the full
	// dependency equation (0 with DisableSlicing; omitted from JSON so
	// the ablation report stays byte-identical to the unsliced build).
	SlicedVars int `json:",omitempty"`
	// InfeasibleTargets counts dispatches refuted statically during
	// slicing — the folded constraint collapsed to false or the
	// abstract destination value excluded the target valuation — and
	// recorded as zero-cost unsat dispatches.
	InfeasibleTargets int `json:",omitempty"`

	// CovEventsDropped counts coverage branch events discarded at the
	// monitor's event-buffer cap; nonzero means the interaction-tuple
	// metric undercounts (see cov.EventCap).
	CovEventsDropped uint64

	// Interrupted is true when the campaign was cut short by context
	// cancellation (SIGINT/SIGTERM): the report is a valid partial —
	// coverage, bugs and counters up to the interruption boundary.
	Interrupted bool `json:"interrupted,omitempty"`

	// Timings is the campaign's phase-time and solver-statistics
	// breakdown.
	Timings Timings

	GraphStats cfg.Stats
}

// Engine runs SymbFuzz on one design.
type Engine struct {
	cfgc  Config
	env   *uvm.Env
	part  *cfg.Partition
	cover *cov.CFGCov
	extra []cov.Monitor

	// pruned marks, per cluster graph, the node IDs whose register
	// valuations the lint facts prove unreachable (nil when disabled).
	pruned []map[int]bool

	// checkpoints are keyed by (cluster graph index, node ID).
	checkpoints map[[2]int]*checkpoint
	prefix      []*uvm.Item
	report      *Report
	rng         *rand.Rand
	vcdBuf      bytes.Buffer
	vcdWriter   *vcd.Writer

	// obs is the telemetry sink; nil disables (all call sites are
	// nil-safe).
	obs *obs.Observer
	// prof is the cost-ledger sink; nil disables (same contract).
	prof *prof.Profiler
	// ctx is the run's cancellation context (set by RunContext for the
	// duration of the run; checked at interval boundaries and between
	// guided steps).
	ctx context.Context
	// shardAll is true when edge sharding is off or this worker's
	// entire in-shard uncovered set is locally drained, unlocking
	// out-of-shard targets; recomputed at each guidance entry.
	shardAll bool
	// lastDrops / dropWarned track the coverage monitor's drop counter
	// between intervals so drops are reported incrementally and the
	// warning fires once.
	lastDrops  uint64
	dropWarned bool
}

// New builds the engine: UVM environment, reset, transition relation,
// static CFG and coverage monitor (Algorithm 1 lines 1–6).
func New(d *elab.Design, properties []*props.Property, c Config) (*Engine, error) {
	c = c.withDefaults()
	env, err := uvm.NewEnv(d, uvm.EnvConfig{
		Seed:        c.Seed,
		Properties:  properties,
		ResetCycles: c.ResetCycles,
		SimBackend:  c.SimBackend,
	})
	if err != nil {
		return nil, err
	}
	if err := env.Reset(); err != nil {
		return nil, err
	}
	tr, err := cfg.BuildTransition(d)
	if err != nil {
		return nil, err
	}
	// Pin the reset input deasserted during CFG construction so the
	// graph describes post-reset behaviour.
	opts := c.CFG
	if opts.Pin == nil {
		opts.Pin = map[string]logic.BV{}
	}
	if env.ClockInfo.Reset >= 0 {
		name := d.Signals[env.ClockInfo.Reset].Name
		if _, set := opts.Pin[name]; !set {
			v := logic.Ones(1)
			if !env.ClockInfo.ActiveLow {
				v = logic.Zero(1)
			}
			opts.Pin[name] = v
		}
	}
	resetVals := map[int]logic.BV{}
	for _, cr := range cfg.ControlRegisters(d) {
		resetVals[cr.Sig.Index] = env.Sim.Get(cr.Sig.Index)
	}
	part, err := cfg.BuildPartition(d, tr, resetVals, opts)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfgc:        c,
		env:         env,
		part:        part,
		cover:       cov.NewCFGCov(part),
		checkpoints: map[[2]int]*checkpoint{},
		report:      &Report{GraphStats: part.Stats()},
		rng:         rand.New(rand.NewSource(c.Seed ^ 0x51bb)),
		obs:         c.Obs,
		prof:        c.Prof,
		shardAll:    true,
	}
	env.Agent.Sequencer.Obs = c.Obs
	if e.prof.Enabled() {
		// The annotation clock is injected so the sim package itself
		// never reads wall time (it must stay deterministic/pure).
		env.Sim.EnableProfile(e.prof.Clock(), e.prof.SampleEvery())
	}
	if !c.DisablePruning {
		e.markPruned(d, resetVals)
	}
	mon := cov.Monitor(e.cover)
	if len(e.extra) > 0 {
		mon = cov.NewMulti(append([]cov.Monitor{e.cover}, e.extra...)...)
	}
	cov.Attach(env.Sim, mon)
	// Cycles are counted monotonically: snapshot restores rewind the
	// simulator's own clock but not the amount of simulation performed.
	env.Sim.OnCycle(func(sim.DUV) { e.report.Cycles++ })
	if c.DumpVCD {
		e.vcdWriter = vcd.NewWriter(&e.vcdBuf)
		for _, g := range part.Graphs {
			for _, cr := range g.Regs {
				e.vcdWriter.Declare(cr.Sig.Name, cr.Sig.Width)
			}
		}
		env.Sim.OnCycle(func(s sim.DUV) {
			_ = e.vcdWriter.Sample(s.Cycle(), func(name string) logic.BV {
				idx := s.SignalIndex(name)
				if idx < 0 {
					return logic.X(1)
				}
				return s.Get(idx)
			})
		})
	}
	return e, nil
}

// AttachMonitor adds an extra coverage monitor observing the same run
// (the evaluation harness uses this to apply one reference metric to
// every fuzzer). Must be called before Run.
func (e *Engine) AttachMonitor(m cov.Monitor) {
	e.extra = append(e.extra, m)
	mon := cov.NewMulti(append([]cov.Monitor{e.cover}, e.extra...)...)
	cov.Attach(e.env.Sim, mon)
}

// Env exposes the UVM environment (examples and tests drive it).
func (e *Engine) Env() *uvm.Env { return e.env }

// Graph exposes the clustered static CFG.
func (e *Engine) Graph() *cfg.Partition { return e.part }

// Coverage exposes the live CFG coverage monitor.
func (e *Engine) Coverage() *cov.CFGCov { return e.cover }

// Run executes Algorithm 1's fuzzing loop until the vector budget is
// exhausted or every static CFG edge has been exercised.
func (e *Engine) Run() (*Report, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cancellation: when ctx is cancelled the loop
// stops at the next interval boundary (or between guided steps inside
// a symbolic phase), the report is finalized as a valid partial with
// Interrupted=true, and no error is returned — callers flush traces,
// metrics and the report exactly as on a normal completion.
func (e *Engine) RunContext(ctx context.Context) (*Report, error) {
	c := e.cfgc
	e.ctx = ctx
	seq := e.env.Agent.Sequencer
	lastPoints := -1
	stagnant := 0
	bugSeen := 0
	var nextCurve uint64

	runStart := time.Now()
	e.obs.CampaignStart(e.report.Vectors, e.cover.Points())

	for e.report.Vectors < c.MaxVectors &&
		(c.ContinueAfterCoverage || !e.cover.AllEdgesCovered()) {
		if ctx.Err() != nil {
			e.report.Interrupted = true
			break
		}
		// --- one interval of I cycles (Alg. 1 line 8) ---
		e.obs.IntervalStart(e.report.Vectors, e.cover.Points())
		ivStart := time.Now()
		for i := 0; i < c.Interval && e.report.Vectors < c.MaxVectors; i++ {
			it := seq.NextItem()
			if err := e.env.Agent.Driver.Apply(it); err != nil {
				return nil, err
			}
			e.prefix = append(e.prefix, it)
			e.report.Vectors++
			e.maybeCheckpoint()
			if e.report.Vectors >= nextCurve {
				e.report.Curve = append(e.report.Curve, CurvePoint{Vectors: e.report.Vectors, Points: e.cover.Points()})
				e.obs.AddCurvePoint(e.report.Vectors, e.cover.Points())
				nextCurve += c.CurveStride
			}
		}
		ivNS := int64(time.Since(ivStart))
		e.report.Timings.FuzzNS += ivNS
		if c.DumpVCD {
			e.scanDump()
		}
		// --- record new bugs with their vector counts (lines 23–25) ---
		vs := e.env.Violations()
		for ; bugSeen < len(vs); bugSeen++ {
			e.report.Bugs = append(e.report.Bugs, BugRecord{Violation: vs[bugSeen], Vectors: e.report.Vectors})
			e.obs.BugFound(vs[bugSeen].Property, e.report.Vectors, e.cover.Points())
		}
		// --- stagnation bookkeeping (lines 13–22) ---
		points := e.cover.Points()
		e.obs.IntervalEnd(e.report.Vectors, points, ivNS)
		e.obs.Cycles(e.report.Cycles)
		e.checkDrops(points)
		if c.Sync != nil && c.Sync(e.cover, e.report) {
			break
		}
		if points > lastPoints {
			lastPoints = points
			stagnant = 0
			continue
		}
		stagnant++
		if c.DisableSymbolic || stagnant < c.Threshold {
			continue
		}
		stagnant = 0
		e.report.SymbolicInvocations++
		e.obs.Stagnation(e.report.Vectors, points)
		symStart := time.Now()
		e.guide()
		e.report.Timings.SymbolicNS += int64(time.Since(symStart))
		e.obs.GuidanceEnd(e.report.Vectors, e.cover.Points())
	}
	// Collect violations raised after the last interval boundary.
	vs := e.env.Violations()
	for ; bugSeen < len(vs); bugSeen++ {
		e.report.Bugs = append(e.report.Bugs, BugRecord{Violation: vs[bugSeen], Vectors: e.report.Vectors})
		e.obs.BugFound(vs[bugSeen].Property, e.report.Vectors, e.cover.Points())
	}
	e.finishReport()
	e.finishSimLedger()
	e.report.Timings.TotalNS = int64(time.Since(runStart))
	e.obs.Cycles(e.report.Cycles)
	// Mirror finishReport's closing curve sample so the live curve's
	// final point matches the report (and the campaign_end event).
	e.obs.AddCurvePoint(e.report.Vectors, e.report.FinalPoints)
	e.obs.CampaignEnd(e.report.Vectors, e.report.FinalPoints)
	return e.report, nil
}

// checkDrops reports coverage-monitor buffer overflow incrementally:
// each interval's newly dropped branch events feed the
// cov_events_dropped metric, and the first occurrence warns once.
func (e *Engine) checkDrops(points int) {
	d := e.cover.Dropped
	if d <= e.lastDrops {
		return
	}
	e.obs.CovDropped(int64(d-e.lastDrops), e.report.Vectors, points)
	e.lastDrops = d
	if !e.dropWarned {
		e.dropWarned = true
		log.Printf("core: coverage monitor dropped %d branch events at the %d-event buffer cap; interaction tuples undercount this campaign", d, cov.EventCap)
	}
}

// maybeCheckpoint records the revisit state the first time each CFG
// node is encountered: §4.5 updates the recorded input sequence on every
// new node, and marks high-fanout nodes as checkpoints. Snapshot mode
// additionally saves the architectural state for O(1) re-entry.
func (e *Engine) maybeCheckpoint() {
	var snap *sim.Snapshot
	for gi, g := range e.part.Graphs {
		node := e.cover.PrevNode(gi)
		if node < 0 {
			continue
		}
		key := [2]int{gi, node}
		if _, ok := e.checkpoints[key]; ok {
			continue
		}
		ck := &checkpoint{graph: gi, node: node, prefix: append([]*uvm.Item(nil), e.prefix...)}
		var snapBytes int64
		if e.cfgc.UseSnapshots {
			if snap == nil {
				snap = e.env.Sim.Snapshot()
			}
			ck.snap = snap
			snapBytes = snap.Bytes()
		}
		e.checkpoints[key] = ck
		e.report.Timings.CheckpointBytes += snapBytes
		e.obs.CheckpointTaken(snapBytes, e.report.Vectors, e.cover.Points())
		if g.Checkpoints[node] {
			e.report.CheckpointsTaken++
		}
	}
}

// markPruned runs the lint reachability analysis (value-domain
// inference refined by SMT-proven dead arms) and marks every CFG node
// holding a register value outside its proven domain. Such nodes come
// from the transition relation's over-approximation — hold variables
// and unconstrained successor models — and no input sequence can reach
// them, so steering the solver toward them is wasted budget. The
// simulator's actual post-reset values are unioned into the domains
// first, and the reset node itself is never pruned.
func (e *Engine) markPruned(d *elab.Design, resetVals map[int]logic.BV) {
	facts := lint.AnalyzeReachability(d)
	for idx, v := range resetVals {
		if cv, ok := canonUint64(v); ok && !facts.Allows(idx, cv) {
			facts.Domains[idx] = append(facts.Domains[idx], cv)
			sort.Slice(facts.Domains[idx], func(i, j int) bool {
				return facts.Domains[idx][i] < facts.Domains[idx][j]
			})
		}
	}
	e.pruned = make([]map[int]bool, len(e.part.Graphs))
	for gi, g := range e.part.Graphs {
		e.pruned[gi] = map[int]bool{}
		for _, n := range g.Nodes {
			if n.ID == 0 {
				continue // reset/root node stays targetable
			}
			for idx, v := range n.Vals {
				cv, ok := canonUint64(v)
				if !ok {
					continue
				}
				if !facts.Allows(idx, cv) {
					e.pruned[gi][n.ID] = true
					e.report.PrunedTargets++
					break
				}
			}
		}
	}
}

// planKey builds the shared-cache key for one dependency-equation
// query: (cluster graph, target node) plus an FNV-1a hash over exactly
// the concrete values SolveStepStats constrains — the in-cluster
// current valuation (canonicalized: X/Z bits read as 0, matching the
// solver's ConstBV encoding) and the pinned out-of-cluster register
// context, both in deterministic signal order.
func (e *Engine) planKey(gi, to int, curVals, context map[int]logic.BV) PlanKey {
	g := e.part.Graphs[gi]
	inCluster := map[int]bool{}
	h := uint64(fnvOffset)
	h = fnvInt(h, gi)
	for _, cr := range g.Regs {
		inCluster[cr.Sig.Index] = true
		h = fnvInt(h, cr.Sig.Index)
		h = hashCanonBV(h, curVals[cr.Sig.Index], cr.Sig.Width)
	}
	h = fnvByte(h, 0xFF) // section separator
	for _, sig := range e.part.Design.Registers() {
		if inCluster[sig.Index] {
			continue
		}
		v, ok := context[sig.Index]
		if !ok {
			continue
		}
		h = fnvInt(h, sig.Index)
		h = hashCanonBV(h, v, sig.Width)
	}
	return PlanKey{Graph: gi, To: to, Ctx: h}
}

// hashCanonBV folds a bit-vector's canonical two-state form (X/Z as 0)
// into an FNV-1a hash.
func hashCanonBV(h uint64, v logic.BV, width int) uint64 {
	h = fnvInt(h, width)
	var acc byte
	for i := 0; i < v.Width(); i++ {
		acc <<= 1
		if v.Bit(i) == logic.L1 {
			acc |= 1
		}
		if i%8 == 7 {
			h = fnvByte(h, acc)
			acc = 0
		}
	}
	if v.Width()%8 != 0 {
		h = fnvByte(h, acc)
	}
	return h
}

// cacheSeed derives the canonical solver seed for a shared-cache query
// from the campaign-wide base seed and the key, so every worker solving
// the same key draws the same model. Never 0 (SolveStepStats treats a
// zero seed as "no randomization").
func (e *Engine) cacheSeed(k PlanKey) int64 {
	base := e.cfgc.SharedSeed
	if base == 0 {
		base = e.cfgc.Seed
	}
	h := uint64(fnvOffset)
	h = fnvInt(h, k.Graph)
	h = fnvInt(h, k.To)
	h = fnvInt(h, int(k.Ctx))
	s := base ^ int64(h)
	if s == 0 {
		s = base | 1
	}
	return s
}

// canonUint64 converts a register value to the engine's canonical
// two-state form (X/Z bits read as 0); ok is false above 64 bits.
func canonUint64(v logic.BV) (uint64, bool) {
	if v.Width() > 64 {
		return 0, false
	}
	out := uint64(0)
	for i := 0; i < v.Width(); i++ {
		if v.Bit(i) == logic.L1 {
			out |= uint64(1) << uint(i)
		}
	}
	return out, true
}

// uncoveredFrom is Graph.UncoveredFrom with pruned targets filtered
// out. count attributes the dropped edges to the PrunedSolves stat;
// only the top-level call in rankedEdges counts, so repeated scoring
// passes do not inflate it.
func (e *Engine) uncoveredFrom(gi, node int, count bool) []cfg.Edge {
	g := e.part.Graphs[gi]
	edges := g.UncoveredFrom(node, e.cover.EdgesSeen[gi])
	if e.pruned != nil && len(e.pruned[gi]) > 0 {
		kept := edges[:0]
		for _, edge := range edges {
			if e.pruned[gi][edge.To] {
				if count {
					e.report.PrunedSolves++
					e.obs.PruneSkip(gi, edge.To, e.report.Vectors, e.cover.Points())
				}
				continue
			}
			kept = append(kept, edge)
		}
		edges = kept
	}
	// Shard filter: while this worker's in-shard frontier has work,
	// out-of-shard edges are someone else's target (not counted as
	// pruned — they are merely deferred).
	if e.cfgc.Shard.Active() && !e.shardAll {
		kept := edges[:0]
		for _, edge := range edges {
			if e.cfgc.Shard.Owns(gi, edge.ID) {
				kept = append(kept, edge)
			}
		}
		edges = kept
	}
	return edges
}

// shardDrained reports whether every un-pruned static edge owned by
// this worker's shard is locally covered. The decision reads only
// local coverage, so it is deterministic regardless of what other
// workers have covered globally.
func (e *Engine) shardDrained() bool {
	s := e.cfgc.Shard
	for gi, g := range e.part.Graphs {
		for _, edge := range g.Edges {
			if !s.Owns(gi, edge.ID) {
				continue
			}
			if e.pruned != nil && e.pruned[gi][edge.To] {
				continue
			}
			if !e.cover.EdgesSeen[gi][edge.ID] {
				return false
			}
		}
	}
	return true
}

// guideSteps bounds the chained guided transitions per symbolic phase,
// and guideTries bounds the alternative edges attempted per step.
const (
	guideSteps = 64
	guideTries = 4
)

// guide is the symbolic stage: pick a cluster graph with unexplored
// out-edges from its current node (or backtrack to the nearest
// revisitable checkpoint that has them, lines 14–18), roll back when
// needed (line 19), solve the dependency equations for an unexplored
// transition (lines 20–21), and keep chaining guided steps while they
// make progress — the paper's inner while-loop that walks the DUV along
// unexplored paths.
func (e *Engine) guide() {
	if e.cfgc.Shard.Active() {
		e.shardAll = e.shardDrained()
	}
	for step := 0; step < guideSteps && e.report.Vectors < e.cfgc.MaxVectors; step++ {
		if e.ctx != nil && e.ctx.Err() != nil {
			return // the run loop records the interruption
		}
		progressed := false
		// Solve in place: clusters whose current node has unexplored
		// out-edges, most-unexplored first.
		for _, cand := range e.inPlaceCandidates() {
			if e.tryEdges(cand[0], cand[1]) {
				progressed = true
				break
			}
		}
		// Backtrack: roll back to a recorded checkpoint with unexplored
		// out-edges (lines 15–19).
		if !progressed {
			for gi := range e.part.Graphs {
				ck := e.findTarget(gi, e.cover.PrevNode(gi))
				if ck == nil {
					continue
				}
				e.rollback(ck)
				if e.tryEdges(ck.graph, ck.node) {
					progressed = true
					break
				}
			}
		}
		if !progressed {
			// Every reachable static edge is exercised (or unsolvable):
			// diversify the interaction tuples by re-entering a recorded
			// checkpoint (§4.5 replays rather than rebooting), or
			// hard-reset when nothing is recorded yet.
			if len(e.checkpoints) > 0 {
				keys := make([][2]int, 0, len(e.checkpoints))
				for k := range e.checkpoints {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool {
					if keys[i][0] != keys[j][0] {
						return keys[i][0] < keys[j][0]
					}
					return keys[i][1] < keys[j][1]
				})
				e.rollback(e.checkpoints[keys[e.rng.Intn(len(keys))]])
			} else {
				_ = e.env.Reset()
				e.prefix = e.prefix[:0]
				e.cover.ResetPosition()
				e.resetCheckerHistory()
				e.report.Rollbacks++
			}
			return
		}
	}
}

// inPlaceCandidates lists (cluster, node) pairs whose current node has
// unexplored out-edges, sorted by unexplored count descending.
func (e *Engine) inPlaceCandidates() [][2]int {
	type cand struct {
		gi, node, score int
	}
	var cands []cand
	for gi := range e.part.Graphs {
		cur := e.cover.PrevNode(gi)
		if cur < 0 {
			continue
		}
		if n := len(e.uncoveredFrom(gi, cur, false)); n > 0 {
			cands = append(cands, cand{gi, cur, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].gi < cands[j].gi
	})
	out := make([][2]int, len(cands))
	for i, c := range cands {
		out[i] = [2]int{c.gi, c.node}
	}
	return out
}

// solveStep dispatches one dependency-equation solve through the
// cone-of-influence sliced path, or the full equation under the
// DisableSlicing ablation (zero SliceInfo).
func (e *Engine) solveStep(g *cfg.Graph, cur, want, context map[int]logic.BV, seed int64) (*cfg.StepPlan, smt.SolveStats, cfg.SliceInfo) {
	if e.cfgc.DisableSlicing {
		plan, st := g.SolveStepStats(cur, want, context, seed)
		return plan, st, cfg.SliceInfo{}
	}
	return g.SolveStepSliced(cur, want, context, seed)
}

// noteSlice folds one dispatch's slicing outcome (net variables saved,
// static refutation) into the report and telemetry counters.
func (e *Engine) noteSlice(saved int, infeasible bool) {
	if saved > 0 {
		e.report.SlicedVars += saved
		e.obs.SliceVars(saved)
	}
	if infeasible {
		e.report.InfeasibleTargets++
		e.obs.SliceSkip()
	}
}

// tryEdges attempts up to guideTries unexplored out-edges of the node,
// solving each with the full concrete register context and applying the
// plan; reports whether any targeted edge got exercised.
func (e *Engine) tryEdges(gi, node int) bool {
	g := e.part.Graphs[gi]
	edges := e.rankedEdges(gi, node)
	for try := 0; try < len(edges) && try < guideTries; try++ {
		edge := edges[try]
		curVals := map[int]logic.BV{}
		context := map[int]logic.BV{}
		for _, cr := range g.Regs {
			curVals[cr.Sig.Index] = e.env.Sim.Get(cr.Sig.Index)
		}
		for _, sig := range e.part.Design.Registers() {
			context[sig.Index] = e.env.Sim.Get(sig.Index)
		}
		var plan *cfg.StepPlan
		var st smt.SolveStats
		var cacheRef obs.CacheRef
		var storeKey PlanKey
		var store PlanCache
		var si cfg.SliceInfo
		if cache := e.cfgc.PlanCache; cache != nil {
			// Shared-cache mode: the solve seed is canonical per query,
			// so any worker producing this key computes the identical
			// plan and statistics, and a hit is indistinguishable from
			// a live solve (modulo saved wall time). The slicing
			// counters ride in the cached entry for the same reason:
			// hit and miss must increment the report identically.
			key := e.planKey(gi, edge.To, curVals, context)
			if c, ok := cache.Lookup(key); ok {
				plan, st = c.Plan, c.Stats
				si = cfg.SliceInfo{FullVars: c.SlicedVars, Infeasible: c.Infeasible}
				e.report.SolveCacheHits++
				cacheRef = obs.CacheRef{State: "hit", OriginWorker: c.OriginWorker, OriginSpan: c.OriginSpan}
			} else {
				plan, st, si = e.solveStep(g, curVals, g.Nodes[edge.To].Vals, context, e.cacheSeed(key))
				e.report.SolveCacheMisses++
				cacheRef = obs.CacheRef{State: "miss"}
				// The cached entry carries the net saving, not the raw
				// split, so a hit replays it via FullVars with ConeVars 0.
				si = cfg.SliceInfo{FullVars: si.FullVars - si.ConeVars, Infeasible: si.Infeasible}
				// Deferred below SolverDispatch so the stored entry can
				// carry the producing solve's span ID.
				storeKey, store = key, cache
			}
		} else {
			plan, st, si = e.solveStep(g, curVals, g.Nodes[edge.To].Vals, context,
				e.cfgc.Seed+int64(e.report.SymbolicInvocations))
			si = cfg.SliceInfo{FullVars: si.FullVars - si.ConeVars, Infeasible: si.Infeasible}
		}
		e.noteSlice(si.FullVars, si.Infeasible)
		e.report.Timings.Solve.add(st)
		spanID := e.obs.SolverDispatch(gi, edge.ID, e.report.Vectors, e.cover.Points(), obs.SolveStats{
			Outcome:      st.Outcome.String(),
			Conflicts:    st.Conflicts,
			Decisions:    st.Decisions,
			Propagations: st.Propagations,
			Restarts:     st.Restarts,
			Clauses:      st.Clauses,
			Vars:         st.Vars,
			BlastNS:      st.BlastNS,
			SolveNS:      st.SolveNS,
			SlicedVars:   int64(si.FullVars),
			Infeasible:   si.Infeasible,
		}, cacheRef)
		e.prof.SolverDispatch(gi, edge.ID, prof.DispatchCost{
			Sat:        st.Outcome == smt.Sat,
			Clauses:    int64(st.Clauses),
			Conflicts:  st.Conflicts,
			Restarts:   st.Restarts,
			SlicedVars: int64(si.FullVars),
			Infeasible: si.Infeasible,
			Cache:      cacheRef.State,
			BlastNS:    st.BlastNS,
			SolveNS:    st.SolveNS,
		})
		if store != nil {
			store.Store(storeKey, CachedPlan{
				Plan: plan, Stats: st,
				SlicedVars: si.FullVars, Infeasible: si.Infeasible,
				OriginWorker: e.obs.Lane(), OriginSpan: spanID,
			})
		}
		if plan == nil {
			continue
		}
		e.report.SolvedPlans++
		pointsBefore := e.cover.Points()
		if e.applyPlan(gi, plan, edge) {
			gained := e.cover.Points() - pointsBefore
			e.obs.PlanApplied(gi, edge.ID, e.report.Vectors, e.cover.Points(), gained, cacheRef)
			e.prof.PlanUnlocked(gi, edge.ID, gained)
			return true
		}
	}
	return false
}

// findTarget locates a checkpoint of cluster gi with uncovered
// out-edges, walking CFG predecessors breadth-first from cur.
func (e *Engine) findTarget(gi, cur int) *checkpoint {
	g := e.part.Graphs[gi]
	visited := map[int]bool{}
	var queue []int
	if cur >= 0 {
		queue = append(queue, cur)
		visited[cur] = true
	} else {
		for key := range e.checkpoints {
			if key[0] == gi {
				queue = append(queue, key[1])
				visited[key[1]] = true
			}
		}
		sort.Ints(queue)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if ck, ok := e.checkpoints[[2]int{gi, n}]; ok {
			if len(e.uncoveredFrom(gi, n, false)) > 0 {
				return ck
			}
		}
		for _, eid := range g.Nodes[n].In {
			from := g.Edges[eid].From
			if !visited[from] {
				visited[from] = true
				queue = append(queue, from)
			}
		}
	}
	// Fall back to any recorded checkpoint of this cluster with work left.
	var keys [][2]int
	for key := range e.checkpoints {
		if key[0] == gi {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i][1] < keys[j][1] })
	for _, key := range keys {
		if len(e.uncoveredFrom(gi, key[1], false)) > 0 {
			return e.checkpoints[key]
		}
	}
	return nil
}

// rollback re-enters a checkpoint: snapshot restore in the fast path, or
// reset plus input-prefix replay (the recorded path of §4.5).
func (e *Engine) rollback(ck *checkpoint) {
	start := time.Now()
	e.report.Rollbacks++
	e.env.Agent.Sequencer.ClearPinned()
	if e.cfgc.UseSnapshots && ck.snap != nil {
		e.env.Sim.Restore(ck.snap)
		e.prefix = append(e.prefix[:0], ck.prefix...)
		e.cover.SyncPosition(e.env.Sim)
		e.resetCheckerHistory()
		d := int64(time.Since(start))
		e.report.Timings.RollbackNS += d
		e.obs.Rollback("snapshot", d, e.report.Vectors, e.cover.Points())
		return
	}
	_ = e.env.Reset()
	e.cover.ResetPosition()
	e.resetCheckerHistory()
	e.report.Replays++
	for _, it := range ck.prefix {
		if err := e.env.Agent.Driver.Apply(it); err != nil {
			return
		}
		e.report.Vectors++ // replay cost is paid in vectors
	}
	e.prefix = append(e.prefix[:0], ck.prefix...)
	e.cover.SyncPosition(e.env.Sim)
	d := int64(time.Since(start))
	e.report.Timings.RollbackNS += d
	e.obs.Rollback("replay", d, e.report.Vectors, e.cover.Points())
}

// applyPlan drives the solved stimulus vector directly, reporting
// whether the targeted edge was exercised.
func (e *Engine) applyPlan(gi int, plan *cfg.StepPlan, edge cfg.Edge) bool {
	seq := e.env.Agent.Sequencer
	it := &uvm.Item{Fields: map[string]logic.BV{}, Hold: 1}
	for _, f := range seq.Fields {
		if v, ok := plan.Inputs[f.Name]; ok {
			it.Fields[f.Name] = v.Resize(f.Width)
		} else {
			it.Fields[f.Name] = logic.Zero(f.Width)
		}
	}
	if err := e.env.Agent.Driver.Apply(it); err != nil {
		return false
	}
	e.prefix = append(e.prefix, it)
	e.report.Vectors++
	e.maybeCheckpoint()
	return e.cover.EdgeSeen(gi, edge.ID)
}

// rankedEdges orders a cluster node's uncovered out-edges by descending
// unlock count, ties broken by ascending Hamming distance (§4.7).
func (e *Engine) rankedEdges(gi, node int) []cfg.Edge {
	g := e.part.Graphs[gi]
	uncovered := e.uncoveredFrom(gi, node, true)
	cur := g.Nodes[node]
	sort.SliceStable(uncovered, func(i, j int) bool {
		ui := len(e.uncoveredFrom(gi, uncovered[i].To, false))
		uj := len(e.uncoveredFrom(gi, uncovered[j].To, false))
		if ui != uj {
			return ui > uj
		}
		return hamming(cur, g.Nodes[uncovered[i].To]) < hamming(cur, g.Nodes[uncovered[j].To])
	})
	return uncovered
}

func hamming(a, b *cfg.Node) int {
	d := 0
	for idx, av := range a.Vals {
		bv, ok := b.Vals[idx]
		if !ok {
			continue
		}
		x := av.Xor(bv)
		for i := 0; i < x.Width(); i++ {
			if x.Bit(i) == logic.L1 {
				d++
			}
		}
	}
	return d
}

func (e *Engine) resetCheckerHistory() {
	if chk := e.env.Agent.Monitor.Checker; chk != nil {
		chk.ResetHistory()
	}
}

// scanDump parses the interval's VCD trace (Alg. 1 line 9's dump-file
// read) and accounts its size; the parsed trace cross-checks the live
// node bookkeeping.
func (e *Engine) scanDump() {
	if e.vcdWriter == nil {
		return
	}
	start := time.Now()
	_ = e.vcdWriter.Flush()
	n := e.vcdBuf.Len()
	e.report.VCDBytes += n
	if n > 0 {
		_, _ = vcd.Read(bytes.NewReader(e.vcdBuf.Bytes()))
	}
	e.vcdBuf.Reset()
	d := int64(time.Since(start))
	e.report.Timings.VCDNS += d
	e.obs.VCDRoundTrip(int64(n), d)
}

func (e *Engine) finishReport() {
	e.report.CovEventsDropped = e.cover.Dropped
	e.report.FinalPoints = e.cover.Points()
	e.report.NodesCovered, e.report.NodesTotal = e.cover.NodeCoverage()
	e.report.EdgesCovered, e.report.EdgesTotal = e.cover.EdgeCoverage()
	e.report.TupleCount = len(e.cover.Tuples)
	e.report.Curve = append(e.report.Curve, CurvePoint{Vectors: e.report.Vectors, Points: e.cover.Points()})
}

// finishSimLedger builds the profiler's simulator-side ledger at
// campaign end: one entry per IR process carrying its deterministic
// eval count, named directly and placed in its levelized cluster via
// the analysis depgraph (a comb process sits at the settle depth of
// its deepest written signal; sequential processes are level -1).
func (e *Engine) finishSimLedger() {
	if !e.prof.Enabled() {
		return
	}
	d := e.env.Sim.Design()
	g := analysis.BuildDepGraph(d)
	evals, sampledNS, sampled := e.env.Sim.ProfileCounts()
	entries := make([]prof.SimEntry, 0, len(d.Procs))
	for pi, p := range d.Procs {
		entry := prof.SimEntry{Proc: p.Name, Kind: "seq", Level: -1}
		if p.Kind == elab.ProcComb {
			entry.Kind = "comb"
			for _, w := range p.Writes {
				if lv := g.Level[w]; lv > entry.Level {
					entry.Level = lv
				}
			}
		}
		if evals != nil {
			entry.Evals = evals[pi]
			entry.SampledNS = sampledNS[pi]
			entry.SampledEvals = sampled[pi]
		}
		entries = append(entries, entry)
	}
	e.prof.SetSim(entries)
}

// String renders a one-line summary of a report.
func (r *Report) String() string {
	return fmt.Sprintf("report{vectors=%d points=%d nodes=%d/%d edges=%d/%d bugs=%d symb=%d rollbacks=%d}",
		r.Vectors, r.FinalPoints, r.NodesCovered, r.NodesTotal,
		r.EdgesCovered, r.EdgesTotal, len(r.Bugs), r.SymbolicInvocations, r.Rollbacks)
}

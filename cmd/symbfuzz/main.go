// Command symbfuzz fuzzes a hardware design with the SymbFuzz engine
// and prints the bug report and coverage summary.
//
// Usage:
//
//	symbfuzz -bench opentitan_mini -vectors 20000
//	symbfuzz -src design.sv -top mymodule -vectors 50000
//	symbfuzz -bench aes -trace out.jsonl -metrics metrics.json -status :6060
//
// Distributed campaigns run one coordinator and N workers:
//
//	symbfuzz -serve :7070 -bench scmi_mailbox -workers 2 -journal camp.jsonl
//	symbfuzz -connect host:7070            # on each worker machine
//	symbfuzz -serve :7070 ... -journal camp.jsonl -resume   # after a crash
//
// Fleet mode hosts many named campaigns on one coordinator process;
// campaigns are managed over the control surface with fuzzctl:
//
//	symbfuzz -fleet :7070 -journal-dir fleetdir             # coordinator
//	fuzzctl -addr host:7070 create -name nightly -bench scmi_mailbox -workers 4
//	symbfuzz -connect host:7070 -campaign nightly           # workers
//	symbfuzz -fleet :7070 -journal-dir fleetdir -resume     # after a crash
//
// SIGINT/SIGTERM interrupt any mode gracefully: the engine stops at
// the next cycle, the JSONL trace and metrics snapshot are flushed,
// and the partial report is printed (and serialized with
// "interrupted": true when -report-out is set).
//
// Built-in benchmarks: alu, opentitan_mini, opentitan_mini_fixed,
// cva6_mini, rocket_mini, mor1kx_mini, and each SoC IP by module name
// (scmi_mailbox, lc_ctrl, aes, otbn_mac, rom_ctrl, pwr_mgr, uart_rx,
// csrng, sysrst_ctrl, otp_ctrl_dai).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	symbfuzz "repro"
	"repro/internal/designs"
	"repro/internal/dist"
	"repro/internal/fleet"
)

// propFlags collects repeated -prop name=expr[;disable] flags, keeping
// both the compiled property and its source form (distributed
// campaigns ship the source strings in the campaign spec).
type propFlags struct {
	props []*symbfuzz.Property
	specs []dist.PropSpec
}

func (p *propFlags) String() string { return fmt.Sprintf("%d properties", len(p.props)) }

func (p *propFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("use -prop name=expr[;disable-iff-expr]")
	}
	exprSrc, disableSrc, _ := strings.Cut(rest, ";")
	name, exprSrc, disableSrc = strings.TrimSpace(name), strings.TrimSpace(exprSrc), strings.TrimSpace(disableSrc)
	prop, err := symbfuzz.ParseProperty(name, exprSrc, disableSrc)
	if err != nil {
		return err
	}
	p.props = append(p.props, prop)
	p.specs = append(p.specs, dist.PropSpec{Name: name, Expr: exprSrc, DisableIff: disableSrc})
	return nil
}

func main() {
	var extraProps propFlags
	var (
		bench     = flag.String("bench", "", "built-in benchmark name")
		srcFile   = flag.String("src", "", "HDL source file (alternative to -bench)")
		top       = flag.String("top", "", "top module (with -src)")
		vectors   = flag.Uint64("vectors", 20000, "input vector budget")
		interval  = flag.Int("interval", 300, "Algorithm 1 interval I (cycles)")
		threshold = flag.Int("threshold", 3, "Algorithm 1 stagnation threshold Th")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 1, "parallel campaign workers (1 = single-engine)")
		fixed     = flag.Bool("fixed", false, "use the bug-free design variant")
		replay    = flag.Bool("replay", false, "use reset+replay instead of snapshots")
		keepGoing = flag.Bool("keep-going", true, "continue after full CFG coverage")
		noSlice   = flag.Bool("no-slice", false, "disable cone-of-influence slicing (ablation)")
		simBack   = flag.String("sim", "interp", "simulation backend: interp (event-driven interpreter) or compiled (closure-compiled; identical trajectories, faster)")
		traceOut  = flag.String("trace", "", "write the JSONL campaign event trace to this file")
		metricOut = flag.String("metrics", "", "write the final metrics/status snapshot JSON to this file")
		statusOn  = flag.String("status", "", "serve the live status+pprof endpoint on this address (e.g. :6060)")
		reportOut = flag.String("report-out", "", "write the final (merged) report JSON to this file")
		profOut   = flag.String("prof", "", "write the campaign cost-ledger dump JSON to this file (explore it with fuzzprof)")
		noProf    = flag.Bool("no-prof", false, "force cost profiling off even when -prof is set (reports are byte-identical either way)")

		serveOn  = flag.String("serve", "", "run as distributed-campaign coordinator on this address (e.g. :7070)")
		connect  = flag.String("connect", "", "run as distributed-campaign worker against this coordinator")
		rankHint = flag.Int("rank-hint", -1, "preferred shard rank when connecting (-1 = any)")
		maxRanks = flag.Int("max-ranks", 0, "maximum shard ranks this worker runs (0 = until campaign done)")
		journal  = flag.String("journal", "", "coordinator journal path (JSONL; enables -resume)")
		resume   = flag.Bool("resume", false, "resume a coordinator (or fleet) from its journal(s)")
		leaseTTL = flag.Duration("lease-ttl", 5*time.Second, "coordinator rank-lease TTL")

		fleetOn    = flag.String("fleet", "", "run as multi-campaign fleet coordinator on this address (create campaigns with fuzzctl)")
		journalDir = flag.String("journal-dir", "", "fleet journal directory (one <campaign>.jsonl per campaign; enables -resume)")
		traceDir   = flag.String("trace-dir", "", "fleet trace directory (one merged <campaign>.trace.jsonl per campaign)")
		campaign   = flag.String("campaign", "", "campaign name to work on when connecting to a fleet coordinator")
		watchOn    = flag.Bool("watch", false, "fleet: enable the streaming health plane (journaled alerts, /v1/watch SSE, fuzztop)")
		syncPub    = flag.Bool("sync-publish", false, "worker: force the v3 synchronous full-snapshot publish path (wire-overhead ablation)")
	)
	flag.Var(&extraProps, "prop",
		`extra security property, repeatable: -prop 'name=err |-> en;!rst_ni'`)
	flag.Parse()

	// SIGINT/SIGTERM cancel the campaign context: every mode stops at
	// the next boundary, flushes telemetry, and reports what it has.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *fleetOn != "" {
		if err := runFleet(ctx, *fleetOn, *journalDir, *traceDir, *resume, *watchOn, *leaseTTL); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "symbfuzz:", err)
			os.Exit(1)
		}
		return
	}
	if *connect != "" {
		if err := runConnect(ctx, *connect, *campaign, *rankHint, *maxRanks, *syncPub); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "symbfuzz:", err)
			os.Exit(1)
		}
		return
	}

	b, err := resolveBenchmark(*bench, *srcFile, *top, *fixed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbfuzz:", err)
		os.Exit(1)
	}
	b.Properties = append(b.Properties, extraProps.props...)

	// Telemetry: build an observer when any observability flag is set;
	// nil otherwise (the engine's zero-overhead fast path).
	var o *symbfuzz.Observer
	var statusSrv interface {
		Shutdown(context.Context) error
		Addr() string
	}
	if *traceOut != "" || *metricOut != "" || *statusOn != "" {
		opts := symbfuzz.ObserverOptions{}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "symbfuzz:", err)
				os.Exit(1)
			}
			opts.Tracer = symbfuzz.NewJSONLTracer(f)
		}
		o = symbfuzz.NewObserver(opts)
		if *statusOn != "" {
			srv, err := symbfuzz.ServeStatus(*statusOn, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, "symbfuzz:", err)
				os.Exit(1)
			}
			statusSrv = srv
			fmt.Printf("status endpoint: http://%s/status (Prometheus at /metrics, pprof at /debug/pprof/)\n", srv.Addr())
		}
	}

	cfg := symbfuzz.Config{
		Interval:              *interval,
		Threshold:             *threshold,
		MaxVectors:            *vectors,
		Seed:                  *seed,
		UseSnapshots:          !*replay,
		ContinueAfterCoverage: *keepGoing,
		DisableSlicing:        *noSlice,
		SimBackend:            *simBack,
		Obs:                   o,
	}

	// Cost profiling: a nil profiler is the zero-overhead fast path;
	// enabling it never changes a trajectory, only records one.
	profiling := *profOut != "" && !*noProf
	var profiler *symbfuzz.Profiler
	if profiling {
		profiler = symbfuzz.NewProfiler(symbfuzz.ProfilerOptions{})
		cfg.Prof = profiler
	}

	var rep *symbfuzz.Report
	var prep *symbfuzz.ParallelReport
	var dump *symbfuzz.CostDump
	var err2 error
	if *serveOn != "" {
		spec := dist.CampaignSpec{
			Bench: *bench, Fixed: *fixed, Top: *top,
			Props:                 extraProps.specs,
			Interval:              cfg.Interval,
			Threshold:             cfg.Threshold,
			MaxVectors:            cfg.MaxVectors,
			Seed:                  cfg.Seed,
			Workers:               *workers,
			UseSnapshots:          cfg.UseSnapshots,
			ContinueAfterCoverage: cfg.ContinueAfterCoverage,
			DisableSlicing:        cfg.DisableSlicing,
			Profile:               profiling,
			SimBackend:            cfg.SimBackend,
		}
		if *srcFile != "" {
			spec.Bench = ""
			spec.Source = b.Source
		}
		prep, dump, err2 = runServe(ctx, *serveOn, spec, b.Name, *journal, *resume, *leaseTTL, o)
		if prep != nil {
			rep = prep.Merged
		}
	} else if *workers > 1 {
		// -workers 1 takes the single-engine path unchanged; N > 1 runs
		// the parallel orchestrator and reports the rank-merged campaign.
		prep, err2 = symbfuzz.FuzzParallelContext(ctx, b, symbfuzz.ParallelConfig{Config: cfg, Workers: *workers})
		if prep != nil {
			rep = prep.Merged
		}
	} else {
		rep, err2 = symbfuzz.FuzzContext(ctx, b, cfg)
	}
	if profiling && dump == nil && err2 == nil {
		// In-process modes: the base profiler collected every rank's
		// ledger (its own for a single engine, per-worker children for
		// -workers N).
		dump = symbfuzz.NewCostDump(b.Name, cfg.Seed, profiler.Ledgers())
	}

	// Flush telemetry before exiting on any path: the trace file ends
	// with what the campaign managed to emit, interrupted or not.
	if cerr := o.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "symbfuzz: trace:", cerr)
	}
	if statusSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = statusSrv.Shutdown(sctx)
		cancel()
	}
	if err2 != nil {
		fmt.Fprintln(os.Stderr, "symbfuzz:", err2)
		os.Exit(1)
	}
	if *metricOut != "" {
		data, merr := json.MarshalIndent(o.Snapshot(), "", "  ")
		if merr == nil {
			merr = os.WriteFile(*metricOut, append(data, '\n'), 0o644)
		}
		if merr != nil {
			fmt.Fprintln(os.Stderr, "symbfuzz: metrics:", merr)
			os.Exit(1)
		}
	}
	if *reportOut != "" {
		data, rerr := json.MarshalIndent(rep, "", "  ")
		if rerr == nil {
			rerr = os.WriteFile(*reportOut, append(data, '\n'), 0o644)
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "symbfuzz: report:", rerr)
			os.Exit(1)
		}
	}
	if profiling && dump != nil {
		if perr := dump.WriteFile(*profOut); perr != nil {
			fmt.Fprintln(os.Stderr, "symbfuzz: prof:", perr)
			os.Exit(1)
		}
		fmt.Printf("cost ledger: %d rank(s), %d sim evals, %d solver dispatches -> %s (explore with fuzzprof)\n",
			len(dump.Ranks), dump.Totals.Evals, dump.Totals.Dispatches, *profOut)
	}

	if rep.Interrupted {
		fmt.Println("campaign interrupted — partial report:")
	}
	fmt.Printf("benchmark: %s (%d LoC)\n", b.Name, b.LoC)
	fmt.Printf("CFG: %d nodes, %d edges, %d checkpoints, %d dependency equations\n",
		rep.GraphStats.Nodes, rep.GraphStats.Edges, rep.GraphStats.Checkpoints, rep.GraphStats.DepEqns)
	if prep != nil {
		printWorkers(prep)
	}
	fmt.Printf("vectors applied: %d (cycles: %d)\n", rep.Vectors, rep.Cycles)
	fmt.Printf("coverage: %d points; nodes %d/%d; edges %d/%d\n",
		rep.FinalPoints, rep.NodesCovered, rep.NodesTotal, rep.EdgesCovered, rep.EdgesTotal)
	fmt.Printf("guidance: %d symbolic invocations, %d solved plans, %d rollbacks\n",
		rep.SymbolicInvocations, rep.SolvedPlans, rep.Rollbacks)
	fmt.Printf("static pruning: %d unreachable CFG nodes excluded, %d solver dispatches avoided\n",
		rep.PrunedTargets, rep.PrunedSolves)
	if !*noSlice {
		fmt.Printf("cone slicing: %d solver variables eliminated, %d targets refuted statically\n",
			rep.SlicedVars, rep.InfeasibleTargets)
	}
	if rep.CovEventsDropped > 0 {
		fmt.Printf("warning: coverage monitor dropped %d branch events (buffer cap); tuple metric undercounts\n",
			rep.CovEventsDropped)
	}
	printTimings(rep)
	if len(rep.Bugs) == 0 {
		fmt.Println("no property violations detected")
		return
	}
	fmt.Printf("\n%-36s %-12s %10s %8s\n", "property", "CWE", "vectors", "cycle")
	for _, bug := range rep.Bugs {
		fmt.Printf("%-36s %-12s %10d %8d\n", bug.Property, bug.CWE, bug.Vectors, bug.Cycle)
	}
}

// runServe hosts the distributed-campaign coordinator until every
// shard rank has reported (or ctx is interrupted). When the spec
// profiles, the workers' rank ledgers (delivered with their reports)
// are merged into a campaign cost dump annotated with the
// coordinator's per-RPC wire tally.
func runServe(ctx context.Context, addr string, spec dist.CampaignSpec, benchName string,
	journal string, resume bool, leaseTTL time.Duration, o *symbfuzz.Observer) (*symbfuzz.ParallelReport, *symbfuzz.CostDump, error) {
	co, err := dist.NewCoordinator(addr, dist.CoordConfig{
		Spec:        spec,
		LeaseTTL:    leaseTTL,
		JournalPath: journal,
		Resume:      resume,
		Obs:         o,
	})
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("coordinator listening on %s (campaign: %d workers, seed %d)\n",
		co.Addr(), spec.Workers, spec.Seed)
	rep, err := co.Wait(ctx)
	var dump *symbfuzz.CostDump
	if spec.Profile && err == nil {
		dump = symbfuzz.NewCostDump(benchName, spec.Seed, co.Ledgers())
		dump.Wire = co.WireLedger()
	}
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = co.Shutdown(sctx)
	cancel()
	return rep, dump, err
}

// runFleet hosts the multi-campaign fleet coordinator until ctx is
// interrupted. Campaigns are created, inspected, and cancelled over
// the /v1/campaigns control surface (see cmd/fuzzctl); workers target
// them with -connect -campaign <name>.
func runFleet(ctx context.Context, addr, journalDir, traceDir string, resume, watch bool, leaseTTL time.Duration) error {
	s, err := fleet.NewServer(addr, fleet.Config{
		JournalDir: journalDir,
		TraceDir:   traceDir,
		Resume:     resume,
		LeaseTTL:   leaseTTL,
		Watch:      watch,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fleet coordinator listening on %s (control surface: http://%s/v1/campaigns, metrics: /metrics)\n",
		s.Addr(), s.Addr())
	if watch {
		fmt.Printf("watch plane on: stream http://%s/v1/watch or run fuzztop -addr %s\n", s.Addr(), s.Addr())
	}
	<-ctx.Done()
	fmt.Println("fleet coordinator shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(sctx)
}

// runConnect runs the distributed-campaign worker loop against a
// remote coordinator (optionally targeting one campaign of a fleet).
func runConnect(ctx context.Context, addr, campaign string, rankHint, maxRanks int, syncPublish bool) error {
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	id := fmt.Sprintf("%s-%d", host, os.Getpid())
	fmt.Printf("worker %s connecting to %s\n", id, addr)
	err := dist.RunWorker(ctx, dist.WorkerConfig{
		Addr: addr, WorkerID: id, Campaign: campaign,
		RankHint: rankHint, MaxRanks: maxRanks, SyncPublish: syncPublish,
	})
	if err == nil {
		fmt.Println("worker done; exiting")
	}
	return err
}

// printWorkers renders the per-worker breakdown of a parallel campaign
// followed by the shared-cache tallies.
func printWorkers(prep *symbfuzz.ParallelReport) {
	fmt.Printf("parallel campaign: %d workers, wall %s\n",
		prep.Workers, time.Duration(prep.WallNS).Round(time.Millisecond))
	fmt.Printf("  %-7s %12s %10s %8s %10s %6s\n", "worker", "seed", "vectors", "points", "edges", "bugs")
	for r, wr := range prep.PerWorker {
		if wr == nil {
			fmt.Printf("  w%-6d %12d %10s\n", r+1, prep.Seeds[r], "(no report)")
			continue
		}
		fmt.Printf("  w%-6d %12d %10d %8d %6d/%-3d %6d\n",
			r+1, prep.Seeds[r], wr.Vectors, wr.FinalPoints, wr.EdgesCovered, wr.EdgesTotal, len(wr.Bugs))
	}
	if prep.CacheHits+prep.CacheMisses > 0 {
		fmt.Printf("  plan cache: %d hits, %d misses\n", prep.CacheHits, prep.CacheMisses)
	}
	if prep.TargetPoints > 0 && prep.TimeToTargetNS > 0 {
		fmt.Printf("  reached %d points in %s\n", prep.TargetPoints,
			time.Duration(prep.TimeToTargetNS).Round(time.Millisecond))
	}
}

// printTimings renders the phase-time table: where the campaign's wall
// clock went (Fig. 4's time axis) and the aggregate solver statistics.
func printTimings(rep *symbfuzz.Report) {
	t := rep.Timings
	dur := func(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }
	pct := func(ns int64) float64 {
		if t.TotalNS == 0 {
			return 0
		}
		return 100 * float64(ns) / float64(t.TotalNS)
	}
	fmt.Println("phase times:")
	fmt.Printf("  %-22s %12s %7s\n", "phase", "wall", "%")
	fmt.Printf("  %-22s %12s %7.1f\n", "fuzz intervals", dur(t.FuzzNS), pct(t.FuzzNS))
	fmt.Printf("  %-22s %12s %7.1f\n", "symbolic guidance", dur(t.SymbolicNS), pct(t.SymbolicNS))
	fmt.Printf("  %-22s %12s %7.1f\n", "  rollback (subset)", dur(t.RollbackNS), pct(t.RollbackNS))
	if t.VCDNS > 0 {
		fmt.Printf("  %-22s %12s %7.1f\n", "vcd round trip", dur(t.VCDNS), pct(t.VCDNS))
	}
	fmt.Printf("  %-22s %12s %7.1f\n", "total", dur(t.TotalNS), 100.0)
	s := t.Solve
	if s.Dispatches > 0 {
		fmt.Printf("solver: %d dispatches (%d sat, %d unsat), mean latency %s (blast %s, cdcl %s)\n",
			s.Dispatches, s.Sat, s.Unsat, dur(s.MeanSolveNS()),
			dur(s.BlastNS/int64(s.Dispatches)), dur(s.CDCLNS/int64(s.Dispatches)))
		fmt.Printf("solver: %d conflicts, %d decisions, %d propagations; %d clauses, %d vars summed over dispatches\n",
			s.Conflicts, s.Decisions, s.Propagations, s.Clauses, s.Vars)
	}
	if t.CheckpointBytes > 0 {
		fmt.Printf("checkpoint store: %.1f KiB architectural state across snapshots\n",
			float64(t.CheckpointBytes)/1024)
	}
}

// resolveBenchmark maps CLI flags to a benchmark.
func resolveBenchmark(bench, srcFile, top string, fixed bool) (*symbfuzz.Benchmark, error) {
	if srcFile != "" {
		data, err := os.ReadFile(srcFile)
		if err != nil {
			return nil, err
		}
		if top == "" {
			return nil, fmt.Errorf("-top is required with -src")
		}
		return &symbfuzz.Benchmark{Name: top, Top: top, Source: string(data)}, nil
	}
	buggy := !fixed
	switch bench {
	case "alu":
		return symbfuzz.ALU(), nil
	case "opentitan_mini":
		if fixed {
			return symbfuzz.OpenTitanMini(map[string]bool{}), nil
		}
		return symbfuzz.OpenTitanMini(nil), nil
	case "cva6_mini":
		return symbfuzz.CVA6Mini(buggy), nil
	case "rocket_mini":
		return symbfuzz.RocketMini(buggy), nil
	case "mor1kx_mini":
		return symbfuzz.Mor1kxMini(buggy), nil
	case "":
		return nil, fmt.Errorf("one of -bench or -src is required")
	}
	for _, ip := range designs.AllIPs() {
		if ip.Name == bench {
			return designs.IPBenchmark(ip, buggy), nil
		}
	}
	if b, ok := designs.FindBenchmark(bench); ok {
		return b, nil
	}
	return nil, fmt.Errorf("unknown benchmark %q", bench)
}

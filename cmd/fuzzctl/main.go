// Command fuzzctl manages campaigns on a fleet coordinator over its
// /v1/campaigns control surface.
//
// Usage:
//
//	fuzzctl -addr host:7070 create -name nightly -bench scmi_mailbox -workers 4
//	fuzzctl -addr host:7070 list
//	fuzzctl -addr host:7070 status nightly
//	fuzzctl -addr host:7070 report nightly -out report.json
//	fuzzctl -addr host:7070 cancel nightly
//	fuzzctl -addr host:7070 fleet -out fleet.json
//
// create mirrors symbfuzz's campaign flags (-bench, -vectors,
// -interval, -threshold, -seed, -workers, -fixed). report prints (or
// writes with -out) the merged campaign report once every rank is
// done; fleet dumps the whole-fleet rollup JSON that fuzzreport
// -fleet renders.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/fleet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "fleet coordinator address")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	base := "http://" + strings.TrimPrefix(strings.TrimRight(*addr, "/"), "http://")

	var err error
	switch args[0] {
	case "create":
		err = cmdCreate(base, args[1:])
	case "list":
		err = cmdList(base)
	case "status":
		err = cmdStatus(base, args[1:])
	case "report":
		err = cmdReport(base, args[1:])
	case "cancel":
		err = cmdCancel(base, args[1:])
	case "fleet":
		err = cmdFleet(base, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "fuzzctl: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzzctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fuzzctl -addr host:port {create|list|status|report|cancel|fleet} [args]")
	flag.PrintDefaults()
}

// apiErr decodes a control-surface error body into a readable error.
func apiErr(resp *http.Response) error {
	body, _ := io.ReadAll(resp.Body)
	var er dist.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Errorf("%s (%d)", er.Error, resp.StatusCode)
	}
	return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func cmdCreate(base string, args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	name := fs.String("name", "", "campaign name (required)")
	bench := fs.String("bench", "", "built-in benchmark name (required)")
	vectors := fs.Uint64("vectors", 20000, "input vector budget per rank")
	interval := fs.Int("interval", 300, "Algorithm 1 interval I (cycles)")
	threshold := fs.Int("threshold", 3, "Algorithm 1 stagnation threshold Th")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "shard ranks")
	fixed := fs.Bool("fixed", false, "use the bug-free design variant")
	replay := fs.Bool("replay", false, "use reset+replay instead of snapshots")
	keepGoing := fs.Bool("keep-going", true, "continue after full CFG coverage")
	noSlice := fs.Bool("no-slice", false, "disable cone-of-influence slicing")
	simBack := fs.String("sim", "interp", "simulation backend: interp or compiled")
	profile := fs.Bool("prof", false, "collect per-rank cost ledgers")
	stopAt := fs.Int("stop-at-points", 0, "stop once the merged frontier reaches this many points")
	fs.Parse(args)
	if *name == "" || *bench == "" {
		return fmt.Errorf("create requires -name and -bench")
	}
	req := fleet.CreateRequest{
		Name: *name,
		Spec: dist.CampaignSpec{
			Bench:                 *bench,
			Fixed:                 *fixed,
			Interval:              *interval,
			Threshold:             *threshold,
			MaxVectors:            *vectors,
			Seed:                  *seed,
			Workers:               *workers,
			UseSnapshots:          !*replay,
			ContinueAfterCoverage: *keepGoing,
			DisableSlicing:        *noSlice,
			SimBackend:            *simBack,
			Profile:               *profile,
		},
		StopAtPoints: *stopAt,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return apiErr(resp)
	}
	var st fleet.CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("created campaign %s (%s): %d ranks\n", st.Campaign, st.CampaignID, st.Workers)
	return nil
}

func cmdList(base string) error {
	var list fleet.ListResponse
	if err := getJSON(base+"/v1/campaigns", &list); err != nil {
		return err
	}
	printStatusTable(list.Campaigns)
	return nil
}

func printStatusTable(camps []fleet.CampaignStatus) {
	fmt.Printf("%-20s %-8s %6s %8s %10s %8s %8s %6s\n",
		"campaign", "state", "ranks", "done", "vectors", "points", "batches", "429s")
	for _, c := range camps {
		state := "running"
		switch {
		case c.Cancelled:
			state = "cancel"
		case c.BudgetStop:
			state = "budget"
		case c.Done:
			state = "done"
		}
		fmt.Printf("%-20s %-8s %6d %8d %10d %8d %8d %6d\n",
			c.Campaign, state, c.Workers, c.RanksDone, c.Vectors, c.Points, c.Batches, c.Rejected429)
	}
}

func oneName(cmd string, args []string) (string, error) {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return "", fmt.Errorf("%s requires a campaign name", cmd)
	}
	return args[0], nil
}

func cmdStatus(base string, args []string) error {
	name, err := oneName("status", args)
	if err != nil {
		return err
	}
	var st fleet.CampaignStatus
	if err := getJSON(base+"/v1/campaigns/"+name, &st); err != nil {
		return err
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func cmdReport(base string, args []string) error {
	name, err := oneName("report", args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("out", "", "write the merged report JSON to this file (default stdout)")
	wait := fs.Duration("wait", 0, "poll until the campaign is done, up to this long (0 = no wait)")
	fs.Parse(args[1:])

	deadline := time.Now().Add(*wait)
	var raw json.RawMessage
	for {
		resp, err := http.Get(base + "/v1/campaigns/" + name + "/report")
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusOK {
			raw, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return err
			}
			break
		}
		ferr := apiErr(resp)
		resp.Body.Close()
		if *wait == 0 || time.Now().After(deadline) {
			return ferr
		}
		time.Sleep(time.Second)
	}
	if *out != "" {
		return os.WriteFile(*out, append(bytes.TrimRight(raw, "\n"), '\n'), 0o644)
	}
	fmt.Println(string(bytes.TrimRight(raw, "\n")))
	return nil
}

func cmdCancel(base string, args []string) error {
	name, err := oneName("cancel", args)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/campaigns/"+name, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	var st fleet.CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("cancelled campaign %s (%d/%d ranks had reported)\n", st.Campaign, st.RanksDone, st.Workers)
	return nil
}

func cmdFleet(base string, args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	out := fs.String("out", "", "write the fleet rollup JSON to this file (default: print a table)")
	fs.Parse(args)
	var st fleet.FleetStatus
	if err := getJSON(base+"/v1/fleet", &st); err != nil {
		return err
	}
	if *out != "" {
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*out, append(data, '\n'), 0o644)
	}
	fmt.Printf("fleet up %s, %d campaign(s)\n", time.Duration(st.UptimeNS).Round(time.Second), len(st.Campaigns))
	printStatusTable(st.Campaigns)
	return nil
}

// Command cfgdump performs SymbFuzz's static analyses on a design and
// prints the control registers, the dependency equations (§4.4.2), the
// control-flow graph with checkpoint marking (§4.5), and Table 3-style
// statistics.
//
// Usage:
//
//	cfgdump -bench lc_ctrl
//	cfgdump -src design.sv -top mymodule -equations
package main

import (
	"flag"
	"fmt"
	"os"

	symbfuzz "repro"
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/designs"
	"repro/internal/elab"
	"repro/internal/logic"
	"repro/internal/sim"
)

func main() {
	var (
		bench  = flag.String("bench", "", "built-in benchmark name")
		srcF   = flag.String("src", "", "HDL source file")
		top    = flag.String("top", "", "top module (with -src)")
		eqns   = flag.Bool("equations", false, "print the dependency equations")
		nodes  = flag.Bool("nodes", false, "print every CFG node")
		dotOut = flag.String("dot", "", "write the clustered CFG as Graphviz to this file")
		maxN   = flag.Int("max-nodes", 4096, "node exploration bound")
		maxS   = flag.Int("max-succ", 32, "per-node successor bound")
		anal   = flag.Bool("analysis", false, "print dataflow analysis facts: levels, per-register cones, statically infeasible CFG targets")
	)
	flag.Parse()

	var (
		b   *symbfuzz.Benchmark
		err error
	)
	if *srcF != "" {
		data, rerr := os.ReadFile(*srcF)
		if rerr != nil {
			fail(rerr)
		}
		if *top == "" {
			fail(fmt.Errorf("-top is required with -src"))
		}
		b = &symbfuzz.Benchmark{Name: *top, Top: *top, Source: string(data)}
	} else {
		b, err = builtin(*bench)
		if err != nil {
			fail(err)
		}
	}
	d, err := b.Elaborate()
	if err != nil {
		fail(err)
	}
	fmt.Printf("design %s: %d signals, %d processes, %d branches\n",
		b.Name, len(d.Signals), len(d.Procs), d.Branches)

	regs := cfg.ControlRegisters(d)
	fmt.Printf("\ncontrol registers (%d):\n", len(regs))
	for _, cr := range regs {
		kind := "comb"
		if cr.Sig.IsReg {
			kind = "flop"
		}
		fmt.Printf("  %-32s width=%-3d domain=%-6d %s\n", cr.Sig.Name, cr.Sig.Width, cr.Domain, kind)
	}
	fmt.Printf("node space (Eqn. 3): %d\n", cfg.NodeSpace(regs))

	tr, err := cfg.BuildTransition(d)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dependency equations generated: %d\n", tr.EqCount)
	if *eqns {
		fmt.Println("\nnext-state dependency equations:")
		for _, r := range tr.Regs {
			if next, ok := tr.Next[r.Index]; ok {
				fmt.Printf("  next(%s) = %s\n", r.Name, next)
			}
		}
	}

	s, err := sim.New(d)
	if err != nil {
		fail(err)
	}
	info := sim.DetectClockReset(d)
	if err := s.ApplyReset(info, 2); err != nil {
		fail(err)
	}
	reset := map[int]logic.BV{}
	for _, cr := range regs {
		reset[cr.Sig.Index] = s.Get(cr.Sig.Index)
	}
	pin := map[string]logic.BV{}
	if info.Reset >= 0 {
		v := logic.Ones(1)
		if !info.ActiveLow {
			v = logic.Zero(1)
		}
		pin[d.Signals[info.Reset].Name] = v
	}
	g, err := cfg.BuildPartition(d, tr, reset, cfg.Options{
		MaxNodes: *maxN, MaxSuccessors: *maxS, Pin: pin,
	})
	if err != nil {
		fail(err)
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(g.Dot(b.Name)), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Graphviz CFG to %s\n", *dotOut)
	}
	st := g.Stats()
	fmt.Printf("\nCFG: %d clusters, %d nodes, %d edges, %d checkpoints (fan-out >= 3)\n",
		len(g.Graphs), st.Nodes, st.Edges, st.Checkpoints)
	if *nodes {
		for gi, gg := range g.Graphs {
			fmt.Printf("cluster %d:\n", gi)
			for _, n := range gg.Nodes {
				mark := " "
				if gg.Checkpoints[n.ID] {
					mark = "*"
				}
				fmt.Printf("%s node %-4d out=%-3d in=%-3d key=%s\n",
					mark, n.ID, len(n.Out), len(n.In), n.Key)
			}
		}
	}
	if *anal {
		printAnalysis(d, g)
	}
}

// printAnalysis runs the IR-level dataflow pass and reports what the
// sliced solver path will exploit: combinational depth, the one-step
// cone of every cluster register, and the CFG target nodes whose
// register valuations the value-range lattice already excludes.
func printAnalysis(d *elab.Design, part *cfg.Partition) {
	f := analysis.Analyze(d)
	fmt.Printf("\ndataflow analysis: %d fixpoint iterations, %d combinational levels\n",
		f.Iterations, f.Dep.MaxLevel())
	fmt.Println("cluster register cones (one-step fan-in, cut at registers):")
	for gi, gg := range part.Graphs {
		for _, cr := range gg.Regs {
			cone := f.Dep.Cone(cr.Sig.Index)
			fmt.Printf("  cluster %d %-28s cone=%-4d frontier=%-4d value=%s\n",
				gi, cr.Sig.Name, len(cone), len(f.Dep.ConeInputs(cone)),
				f.SignalValue(cr.Sig.Index).String())
		}
	}
	total, infeasible := 0, 0
	for gi, gg := range part.Graphs {
		cnt := 0
		for _, n := range gg.Nodes {
			for idx, v := range n.Vals {
				if !f.MayHold(idx, v) {
					cnt++
					break
				}
			}
		}
		total += len(gg.Nodes)
		infeasible += cnt
		if cnt > 0 {
			fmt.Printf("  cluster %d: %d/%d nodes statically infeasible\n", gi, cnt, len(gg.Nodes))
		}
	}
	fmt.Printf("statically infeasible CFG targets: %d of %d nodes\n", infeasible, total)
}

func builtin(name string) (*symbfuzz.Benchmark, error) {
	switch name {
	case "alu":
		return symbfuzz.ALU(), nil
	case "opentitan_mini":
		return symbfuzz.OpenTitanMini(nil), nil
	case "cva6_mini":
		return symbfuzz.CVA6Mini(true), nil
	case "rocket_mini":
		return symbfuzz.RocketMini(true), nil
	case "mor1kx_mini":
		return symbfuzz.Mor1kxMini(true), nil
	case "":
		return nil, fmt.Errorf("one of -bench or -src is required")
	}
	for _, ip := range designs.AllIPs() {
		if ip.Name == name {
			return designs.IPBenchmark(ip, true), nil
		}
	}
	if b, ok := designs.FindBenchmark(name); ok {
		return b, nil
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cfgdump:", err)
	os.Exit(1)
}

// Command cfgdump performs SymbFuzz's static analyses on a design and
// prints the control registers, the dependency equations (§4.4.2), the
// control-flow graph with checkpoint marking (§4.5), and Table 3-style
// statistics.
//
// Usage:
//
//	cfgdump -bench lc_ctrl
//	cfgdump -src design.sv -top mymodule -equations
package main

import (
	"flag"
	"fmt"
	"os"

	symbfuzz "repro"
	"repro/internal/cfg"
	"repro/internal/designs"
	"repro/internal/logic"
	"repro/internal/sim"
)

func main() {
	var (
		bench  = flag.String("bench", "", "built-in benchmark name")
		srcF   = flag.String("src", "", "HDL source file")
		top    = flag.String("top", "", "top module (with -src)")
		eqns   = flag.Bool("equations", false, "print the dependency equations")
		nodes  = flag.Bool("nodes", false, "print every CFG node")
		dotOut = flag.String("dot", "", "write the clustered CFG as Graphviz to this file")
		maxN   = flag.Int("max-nodes", 4096, "node exploration bound")
		maxS   = flag.Int("max-succ", 32, "per-node successor bound")
	)
	flag.Parse()

	var (
		b   *symbfuzz.Benchmark
		err error
	)
	if *srcF != "" {
		data, rerr := os.ReadFile(*srcF)
		if rerr != nil {
			fail(rerr)
		}
		if *top == "" {
			fail(fmt.Errorf("-top is required with -src"))
		}
		b = &symbfuzz.Benchmark{Name: *top, Top: *top, Source: string(data)}
	} else {
		b, err = builtin(*bench)
		if err != nil {
			fail(err)
		}
	}
	d, err := b.Elaborate()
	if err != nil {
		fail(err)
	}
	fmt.Printf("design %s: %d signals, %d processes, %d branches\n",
		b.Name, len(d.Signals), len(d.Procs), d.Branches)

	regs := cfg.ControlRegisters(d)
	fmt.Printf("\ncontrol registers (%d):\n", len(regs))
	for _, cr := range regs {
		kind := "comb"
		if cr.Sig.IsReg {
			kind = "flop"
		}
		fmt.Printf("  %-32s width=%-3d domain=%-6d %s\n", cr.Sig.Name, cr.Sig.Width, cr.Domain, kind)
	}
	fmt.Printf("node space (Eqn. 3): %d\n", cfg.NodeSpace(regs))

	tr, err := cfg.BuildTransition(d)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dependency equations generated: %d\n", tr.EqCount)
	if *eqns {
		fmt.Println("\nnext-state dependency equations:")
		for _, r := range tr.Regs {
			if next, ok := tr.Next[r.Index]; ok {
				fmt.Printf("  next(%s) = %s\n", r.Name, next)
			}
		}
	}

	s, err := sim.New(d)
	if err != nil {
		fail(err)
	}
	info := sim.DetectClockReset(d)
	if err := s.ApplyReset(info, 2); err != nil {
		fail(err)
	}
	reset := map[int]logic.BV{}
	for _, cr := range regs {
		reset[cr.Sig.Index] = s.Get(cr.Sig.Index)
	}
	pin := map[string]logic.BV{}
	if info.Reset >= 0 {
		v := logic.Ones(1)
		if !info.ActiveLow {
			v = logic.Zero(1)
		}
		pin[d.Signals[info.Reset].Name] = v
	}
	g, err := cfg.BuildPartition(d, tr, reset, cfg.Options{
		MaxNodes: *maxN, MaxSuccessors: *maxS, Pin: pin,
	})
	if err != nil {
		fail(err)
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(g.Dot(b.Name)), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Graphviz CFG to %s\n", *dotOut)
	}
	st := g.Stats()
	fmt.Printf("\nCFG: %d clusters, %d nodes, %d edges, %d checkpoints (fan-out >= 3)\n",
		len(g.Graphs), st.Nodes, st.Edges, st.Checkpoints)
	if *nodes {
		for gi, gg := range g.Graphs {
			fmt.Printf("cluster %d:\n", gi)
			for _, n := range gg.Nodes {
				mark := " "
				if gg.Checkpoints[n.ID] {
					mark = "*"
				}
				fmt.Printf("%s node %-4d out=%-3d in=%-3d key=%s\n",
					mark, n.ID, len(n.Out), len(n.In), n.Key)
			}
		}
	}
}

func builtin(name string) (*symbfuzz.Benchmark, error) {
	switch name {
	case "alu":
		return symbfuzz.ALU(), nil
	case "opentitan_mini":
		return symbfuzz.OpenTitanMini(nil), nil
	case "cva6_mini":
		return symbfuzz.CVA6Mini(true), nil
	case "rocket_mini":
		return symbfuzz.RocketMini(true), nil
	case "mor1kx_mini":
		return symbfuzz.Mor1kxMini(true), nil
	case "":
		return nil, fmt.Errorf("one of -bench or -src is required")
	}
	for _, ip := range designs.AllIPs() {
		if ip.Name == name {
			return designs.IPBenchmark(ip, true), nil
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cfgdump:", err)
	os.Exit(1)
}

// Command fuzztop is the fleet's terminal dashboard: a live top-style
// view of every hosted campaign's progress, health score, and active
// alerts, driven by the coordinator's /v1/watch SSE stream.
//
// Usage:
//
//	fuzztop -addr host:7070          # live view, redrawn per health frame
//	fuzztop -addr host:7070 -once    # render one frame to stdout and exit
//
// -once is byte-deterministic for a settled fleet: the frame carries
// no timestamps, durations, or map-order output, so two captures of
// the same fleet state compare equal — which is how CI pins it.
// Against a fleet running without the watch plane, fuzztop degrades to
// the progress columns (health shows "-").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/watch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "fleet coordinator address")
	once := flag.Bool("once", false, "render a single frame to stdout and exit")
	interval := flag.Duration("interval", time.Second, "live-mode minimum redraw interval")
	flag.Parse()
	base := "http://" + strings.TrimPrefix(strings.TrimRight(*addr, "/"), "http://")

	if *once {
		m, err := fetchModel(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuzztop:", err)
			os.Exit(1)
		}
		os.Stdout.WriteString(render(m))
		return
	}
	if err := live(base, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "fuzztop:", err)
		os.Exit(1)
	}
}

// fetchModel assembles one frame's model from the one-shot surfaces:
// /v1/fleet for progress, /v1/watch/snapshot for health (absent —
// 404 — when the watch plane is disabled).
func fetchModel(base string) (model, error) {
	m := model{Health: map[string]watch.CampaignHealth{}}
	var fs fleet.FleetStatus
	if err := getJSON(base+"/v1/fleet", &fs); err != nil {
		return m, err
	}
	m.Campaigns = fs.Campaigns
	var snap fleet.WatchSnapshot
	switch err := getJSON(base+"/v1/watch/snapshot", &snap); {
	case err == nil:
		m.Watch = true
		m.Dropped = snap.Dropped
		for _, h := range snap.Campaigns {
			m.Health[h.Campaign] = h
		}
	case strings.Contains(err.Error(), "status 404"):
		// watch plane disabled: progress columns only
	default:
		return m, err
	}
	return m, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// live consumes the /v1/watch SSE stream, folding health frames and
// alert events into the model and redrawing at most once per interval.
// Progress columns refresh from /v1/fleet on the same cadence.
func live(base string, interval time.Duration) error {
	m, err := fetchModel(base)
	if err != nil {
		return err
	}
	draw(m)
	if !m.Watch {
		// No stream to follow: poll the one-shot surfaces.
		for {
			time.Sleep(interval)
			if m, err = fetchModel(base); err != nil {
				return err
			}
			draw(m)
		}
	}

	resp, err := http.Get(base + "/v1/watch")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/v1/watch: status %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	last := time.Now()
	dirty := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var u watch.Update
		if err := json.Unmarshal([]byte(line[len("data: "):]), &u); err != nil {
			continue
		}
		switch {
		case u.Health != nil:
			h := *u.Health
			if prev, ok := m.Health[u.Campaign]; ok && len(h.Series) == 0 {
				h.Series = prev.Series // sweep frames travel light
			}
			m.Health[u.Campaign] = h
			dirty = true
		case u.Alert != nil:
			dirty = true
		case u.Sample != nil:
			// Samples refresh the sparkline between sweeps.
			h := m.Health[u.Campaign]
			h.Campaign = u.Campaign
			h.Series = append(h.Series, obs.SeriesPoint{
				TNS: u.Sample.TNS, Worker: u.Sample.Lane, Interval: u.Sample.Interval,
				Vectors: u.Sample.Vectors, Points: u.Sample.Points,
			})
			if len(h.Series) > 2*sparkWidth {
				h.Series = h.Series[len(h.Series)-sparkWidth:]
			}
			m.Health[u.Campaign] = h
			dirty = true
		}
		if dirty && time.Since(last) >= interval {
			if fm, err := fetchModel(base); err == nil {
				fm.Health = m.Health // the stream is fresher than the snapshot
				m = fm
			}
			draw(m)
			last, dirty = time.Now(), false
		}
	}
	// Stream closed: the fleet shut down.
	return sc.Err()
}

// draw repaints the terminal with one frame.
func draw(m model) {
	os.Stdout.WriteString("\x1b[H\x1b[2J" + render(m) + renderLiveFooter(m))
}

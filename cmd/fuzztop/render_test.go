package main

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/watch"
)

func fixtureModel() model {
	// Campaigns arrive deliberately unsorted: render must sort.
	return model{
		Watch: true,
		Campaigns: []fleet.CampaignStatus{
			{Status: dist.Status{Campaign: "zeta", Workers: 2, RanksDone: 2, Vectors: 6000, Points: 41, Done: true}},
			{Status: dist.Status{Campaign: "alpha", Workers: 4, RanksDone: 1, Vectors: 1200, Points: 17}},
		},
		Health: map[string]watch.CampaignHealth{
			"alpha": {
				Campaign: "alpha", Score: 60, AlertsTotal: 3,
				Alerts: []watch.Alert{
					{ID: "alpha/coverage_stall/r0/i9", Severity: watch.SevWarn, Msg: "no new points for 8 intervals"},
					{ID: "alpha/rank_dead/r2/i0", Severity: watch.SevCrit, Msg: "lease expired without report"},
				},
				Series: []obs.SeriesPoint{
					{Interval: 0, Vectors: 100, Points: 3}, {Interval: 1, Vectors: 200, Points: 9},
					{Interval: 2, Vectors: 300, Points: 17}, {Interval: 3, Vectors: 400, Points: 17},
				},
			},
			"zeta": {Campaign: "zeta", Score: 100, Done: true, AlertsTotal: 0},
		},
	}
}

// TestRenderDeterministic pins the -once contract: rendering the same
// model twice (and rendering an independently built copy) is
// byte-identical, campaigns come out name-sorted, and nothing
// time-like leaks into the frame.
func TestRenderDeterministic(t *testing.T) {
	a, b := render(fixtureModel()), render(fixtureModel())
	if a != b {
		t.Fatalf("render diverged across identical models:\n%s\n---\n%s", a, b)
	}
	if strings.Contains(a, "ns") || strings.Contains(a, "NS") {
		t.Errorf("frame leaks a duration field:\n%s", a)
	}
	ia, iz := strings.Index(a, "alpha"), strings.Index(a, "zeta")
	if ia < 0 || iz < 0 || ia > iz {
		t.Errorf("campaigns not name-sorted:\n%s", a)
	}
	for _, want := range []string{
		"2 campaign(s)",
		"alpha/rank_dead/r2/i0",
		"crit",
		"60", // alpha's score
		"▁",  // sparkline low bar
		"█",  // sparkline high bar
	} {
		if !strings.Contains(a, want) {
			t.Errorf("frame missing %q:\n%s", want, a)
		}
	}
	if strings.Contains(a, "watch plane disabled") {
		t.Errorf("watch-enabled frame carries the disabled banner:\n%s", a)
	}
}

// TestRenderDegraded covers a fleet without the watch plane: health
// columns show "-", no alert section, and the banner says why.
func TestRenderDegraded(t *testing.T) {
	m := fixtureModel()
	m.Watch = false
	m.Health = map[string]watch.CampaignHealth{}
	out := render(m)
	if !strings.Contains(out, "[watch plane disabled]") {
		t.Errorf("missing disabled banner:\n%s", out)
	}
	if strings.Contains(out, "ACTIVE ALERTS") {
		t.Errorf("alert section without health data:\n%s", out)
	}
	if !strings.Contains(out, " - ") {
		t.Errorf("health column should degrade to '-':\n%s", out)
	}
}

// TestSparkline covers the scaling edges.
func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("empty series = %q", got)
	}
	if got := sparkline([]int{5, 5, 5}); got != "▅▅▅" {
		t.Errorf("constant series = %q, want mid-scale bars", got)
	}
	got := sparkline([]int{0, 7})
	if got != "▁█" {
		t.Errorf("two-point range = %q, want low+high", got)
	}
	// Monotone ramps never decrease.
	ramp := sparkline([]int{1, 2, 3, 4, 5, 6, 7, 8})
	runes := []rune(ramp)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("ramp %q decreases at %d", ramp, i)
		}
	}
}

package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fleet"
	"repro/internal/watch"
)

// The renderer is a pure function from fleet state to text: no wall
// clock, no map-order iteration, no NS fields. Two renders of the same
// fleet state are byte-identical — CI pins that by diffing two
// `fuzztop -once` captures of a settled fleet.

// sparkRunes is the 8-level bar alphabet, lowest first.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline scales a series of values into bar runes. Constant series
// render mid-scale; an empty series renders empty.
func sparkline(vals []int) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := len(sparkRunes) / 2
		if hi > lo {
			i = (v - lo) * (len(sparkRunes) - 1) / (hi - lo)
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// sparkWidth bounds the sparkline to the newest n samples.
const sparkWidth = 32

// model is everything one frame renders: the fleet rollup plus (when
// the watch plane is up) per-campaign health.
type model struct {
	Campaigns []fleet.CampaignStatus
	Health    map[string]watch.CampaignHealth
	Watch     bool  // watch plane reachable
	Dropped   int64 // bus drop counter (live footer only)
}

// render draws one frame. Campaigns sort by name; alerts arrive
// ID-sorted from the engine and are kept in that order.
func render(m model) string {
	var b strings.Builder
	camps := append([]fleet.CampaignStatus(nil), m.Campaigns...)
	sort.Slice(camps, func(i, j int) bool { return camps[i].Campaign < camps[j].Campaign })

	fmt.Fprintf(&b, "fuzztop — %d campaign(s)", len(camps))
	if !m.Watch {
		b.WriteString("  [watch plane disabled]")
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-16s %-8s %6s %10s %8s %7s %7s  %s\n",
		"CAMPAIGN", "STATE", "RANKS", "VECTORS", "POINTS", "HEALTH", "ALERTS", "COVERAGE")

	for _, c := range camps {
		state := "run"
		if c.Done {
			state = "done"
		} else if c.Cancelled {
			state = "cancel"
		} else if c.BudgetStop {
			state = "budget"
		}
		health, alerts := "-", "-"
		var spark string
		if h, ok := m.Health[c.Campaign]; ok {
			health = fmt.Sprintf("%d", h.Score)
			alerts = fmt.Sprintf("%d/%d", len(h.Alerts), h.AlertsTotal)
			pts := make([]int, 0, len(h.Series))
			for _, p := range h.Series {
				pts = append(pts, p.Points)
			}
			if len(pts) > sparkWidth {
				pts = pts[len(pts)-sparkWidth:]
			}
			spark = sparkline(pts)
		}
		fmt.Fprintf(&b, "%-16s %-8s %3d/%-2d %10d %8d %7s %7s  %s\n",
			c.Campaign, state, c.RanksDone, c.Workers, c.Vectors, c.Points, health, alerts, spark)
	}

	// Active alerts, campaign-sorted then engine (ID) order.
	var alertLines []string
	for _, c := range camps {
		h, ok := m.Health[c.Campaign]
		if !ok {
			continue
		}
		for _, a := range h.Alerts {
			alertLines = append(alertLines,
				fmt.Sprintf("  %-4s %-40s %s", a.Severity, a.ID, a.Msg))
		}
	}
	if len(alertLines) > 0 {
		b.WriteString("\nACTIVE ALERTS\n")
		for _, l := range alertLines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// renderLiveFooter appends the live-mode-only trailer (drop accounting
// is wall-clock-ish state, so -once never prints it).
func renderLiveFooter(m model) string {
	return fmt.Sprintf("\nbus drops: %d   (q to quit via ^C)\n", m.Dropped)
}

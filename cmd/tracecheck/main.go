// Command tracecheck validates a SymbFuzz campaign trace (the JSONL
// stream written by symbfuzz -trace) against the event schema: every
// line a known typed event, monotonic timestamps and vector counts,
// campaign_start/campaign_end framing. It then checks the causal-span
// layer for referential integrity: every parent span exists, the
// parent graph is acyclic and rooted in campaign spans, and cache-hit
// attributions resolve. With -metrics it additionally cross-checks the
// trace's final coverage_points against the metrics snapshot's
// coverage_points gauge, so trace and registry reconcile. With -bench
// it elaborates the named benchmark, rebuilds its static CFG, and
// verifies every solve span targets a CFG edge that actually exists.
//
// Usage:
//
//	tracecheck trace.jsonl
//	tracecheck -metrics metrics.json trace.jsonl
//	tracecheck -bench scmi_mailbox trace.jsonl
//	symbfuzz ... -trace /dev/stdout | tracecheck -
//
// Exit status 0 on a valid trace, 1 otherwise.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cfg"
	"repro/internal/dist"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	metrics := flag.String("metrics", "", "metrics snapshot JSON to reconcile coverage_points against")
	bench := flag.String("bench", "", "benchmark name: cross-check solve spans against its static CFG")
	fixed := flag.Bool("fixed", false, "with -bench, use the bug-fixed design variant")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-metrics metrics.json] [-bench name] <trace.jsonl | ->")
		os.Exit(1)
	}

	var data []byte
	var err error
	if flag.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fail(err)
	}

	sum, err := obs.ValidateTrace(bytes.NewReader(data))
	if err != nil {
		invalid(err)
	}
	events, err := obs.ReadEvents(bytes.NewReader(data))
	if err != nil {
		invalid(err)
	}
	spans, err := obs.ValidateSpans(events)
	if err != nil {
		invalid(fmt.Errorf("span integrity: %w", err))
	}

	if *metrics != "" {
		raw, err := os.ReadFile(*metrics)
		if err != nil {
			fail(err)
		}
		var snap obs.StatusSnapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			fail(fmt.Errorf("metrics: %w", err))
		}
		if got := snap.Metrics.Gauges["coverage_points"]; got != int64(sum.FinalPoints) {
			invalid(fmt.Errorf("trace final coverage_points %d != metrics gauge %d", sum.FinalPoints, got))
		}
		if got := snap.Metrics.Gauges["vectors_applied"]; got != int64(sum.FinalVectors) {
			invalid(fmt.Errorf("trace final vectors %d != metrics gauge %d", sum.FinalVectors, got))
		}
	}

	solvesChecked := -1
	if *bench != "" {
		solvesChecked, err = checkSolveEdges(*bench, *fixed, events)
		if err != nil {
			invalid(err)
		}
	}

	fmt.Printf("valid trace: %d events, %d vectors, %d coverage points, %d bugs\n",
		sum.Events, sum.FinalVectors, sum.FinalPoints, sum.Bugs)
	for _, typ := range []string{
		obs.EvIntervalEnd, obs.EvStagnation, obs.EvSolverDisp, obs.EvPlanApplied,
		obs.EvRollback, obs.EvCheckpoint, obs.EvPruneSkip, obs.EvBugFound, obs.EvCovDropped,
	} {
		if n := sum.ByType[typ]; n > 0 {
			fmt.Printf("  %-20s %6d\n", typ, n)
		}
	}
	fmt.Printf("valid spans: %d spans, %d campaign roots, %d cross-rank links\n",
		spans.Spans, spans.Roots, spans.CrossRankLinks)
	for _, kind := range []string{
		obs.SpanInterval, obs.SpanStimBatch, obs.SpanStagnate,
		obs.SpanSolve, obs.SpanPlanApply, obs.SpanCovDelta,
	} {
		if n := spans.ByKind[kind]; n > 0 {
			fmt.Printf("  %-20s %6d\n", kind, n)
		}
	}
	if spans.DanglingOrigins > 0 {
		fmt.Printf("  note: %d cache-hit origins not in this trace (partial merge?)\n", spans.DanglingOrigins)
	}
	if chain, ok := obs.FindCrossRankChain(events); ok {
		fmt.Printf("cross-process chain: %s (rank %d) -> %s (rank %d) +%d points\n",
			chain.Solve, chain.OriginRank, chain.HitSolve, chain.HitRank, chain.Gained)
	}
	if solvesChecked >= 0 {
		fmt.Printf("solve spans vs %s CFG: %d checked, all edges exist\n", *bench, solvesChecked)
	}
}

// checkSolveEdges rebuilds the benchmark's static CFG exactly the way
// the engine does (post-reset valuation, reset input pinned
// deasserted, default exploration bounds) and verifies every solve
// span in the trace names a (cluster, edge) that exists in it.
func checkSolveEdges(name string, fixed bool, events []obs.Event) (int, error) {
	b, _, err := dist.ResolveSpec(dist.CampaignSpec{Bench: name, Fixed: fixed})
	if err != nil {
		return 0, err
	}
	d, err := b.Elaborate()
	if err != nil {
		return 0, err
	}
	tr, err := cfg.BuildTransition(d)
	if err != nil {
		return 0, err
	}
	s, err := sim.New(d)
	if err != nil {
		return 0, err
	}
	info := sim.DetectClockReset(d)
	if err := s.ApplyReset(info, 2); err != nil {
		return 0, err
	}
	reset := map[int]logic.BV{}
	for _, cr := range cfg.ControlRegisters(d) {
		reset[cr.Sig.Index] = s.Get(cr.Sig.Index)
	}
	pin := map[string]logic.BV{}
	if info.Reset >= 0 {
		v := logic.Ones(1)
		if !info.ActiveLow {
			v = logic.Zero(1)
		}
		pin[d.Signals[info.Reset].Name] = v
	}
	part, err := cfg.BuildPartition(d, tr, reset, cfg.Options{Pin: pin})
	if err != nil {
		return 0, err
	}

	checked := 0
	for _, ev := range events {
		if ev.Type != obs.EvSpan || ev.Kind != obs.SpanSolve {
			continue
		}
		checked++
		if !part.HasEdge(ev.Graph, ev.Edge) {
			return 0, fmt.Errorf("solve span %s targets edge %d of cluster %d, which does not exist in %s's CFG",
				ev.Span, ev.Edge, ev.Graph, name)
		}
	}
	return checked, nil
}

func invalid(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck: INVALID:", err)
	os.Exit(1)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}

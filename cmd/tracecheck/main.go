// Command tracecheck validates a SymbFuzz campaign trace (the JSONL
// stream written by symbfuzz -trace) against the event schema: every
// line a known typed event, monotonic timestamps and vector counts,
// campaign_start/campaign_end framing. With -metrics it additionally
// cross-checks the trace's final coverage_points against the metrics
// snapshot's coverage_points gauge, so trace and registry reconcile.
//
// Usage:
//
//	tracecheck trace.jsonl
//	tracecheck -metrics metrics.json trace.jsonl
//	symbfuzz ... -trace /dev/stdout | tracecheck -
//
// Exit status 0 on a schema-valid trace, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	metrics := flag.String("metrics", "", "metrics snapshot JSON to reconcile coverage_points against")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-metrics metrics.json] <trace.jsonl | ->")
		os.Exit(1)
	}

	var r io.Reader
	if flag.Arg(0) == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	sum, err := obs.ValidateTrace(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: INVALID:", err)
		os.Exit(1)
	}

	if *metrics != "" {
		data, err := os.ReadFile(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		var snap obs.StatusSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck: metrics:", err)
			os.Exit(1)
		}
		if got := snap.Metrics.Gauges["coverage_points"]; got != int64(sum.FinalPoints) {
			fmt.Fprintf(os.Stderr, "tracecheck: INVALID: trace final coverage_points %d != metrics gauge %d\n",
				sum.FinalPoints, got)
			os.Exit(1)
		}
		if got := snap.Metrics.Gauges["vectors_applied"]; got != int64(sum.FinalVectors) {
			fmt.Fprintf(os.Stderr, "tracecheck: INVALID: trace final vectors %d != metrics gauge %d\n",
				sum.FinalVectors, got)
			os.Exit(1)
		}
	}

	fmt.Printf("valid trace: %d events, %d vectors, %d coverage points, %d bugs\n",
		sum.Events, sum.FinalVectors, sum.FinalPoints, sum.Bugs)
	for _, typ := range []string{
		obs.EvIntervalEnd, obs.EvStagnation, obs.EvSolverDisp, obs.EvPlanApplied,
		obs.EvRollback, obs.EvCheckpoint, obs.EvPruneSkip, obs.EvBugFound, obs.EvCovDropped,
	} {
		if n := sum.ByType[typ]; n > 0 {
			fmt.Printf("  %-20s %6d\n", typ, n)
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"os"
	"time"

	"repro/internal/fleet"
)

// The -fleet mode renders the whole-fleet rollup JSON that `fuzzctl
// fleet -out` dumps (the /v1/fleet control-surface document): one row
// per campaign with its progress and the admission-control telemetry
// — ingest queue depth and bytes, accepted batches, 429 rejections,
// dropped batches — that the Prometheus endpoint exports per
// campaign. Like the trace report, the HTML output is a pure function
// of the input document.

func runFleetReport(data []byte, htmlOut string) error {
	var st fleet.FleetStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("invalid fleet rollup: %w", err)
	}
	renderFleetText(os.Stdout, st)
	if htmlOut != "" {
		return writeFleetHTML(htmlOut, st)
	}
	return nil
}

func campState(c fleet.CampaignStatus) string {
	switch {
	case c.Cancelled:
		return "cancelled"
	case c.BudgetStop:
		return "budget-stop"
	case c.Done:
		return "done"
	default:
		return "running"
	}
}

func renderFleetText(w io.Writer, st fleet.FleetStatus) {
	fmt.Fprintf(w, "Fleet rollup: %d campaign(s), up %s\n\n",
		len(st.Campaigns), time.Duration(st.UptimeNS).Round(time.Second))
	fmt.Fprintf(w, "%-20s %-12s %5s %5s %9s %7s %9s %6s %6s %6s %8s\n",
		"campaign", "state", "ranks", "done", "vectors", "points",
		"batches", "429s", "drops", "queue", "solver")
	for _, c := range st.Campaigns {
		fmt.Fprintf(w, "%-20s %-12s %5d %5d %9d %7d %9d %6d %6d %6d %7.1fs\n",
			c.Campaign, campState(c), c.Workers, c.RanksDone, c.Vectors, c.Points,
			c.Batches, c.Rejected429, c.Dropped, c.QueueDepth,
			float64(c.SolverNS)/1e9)
	}
}

func writeFleetHTML(path string, st fleet.FleetStatus) error {
	buf := []byte(fleetHTML(st))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote fleet rollup to %s (%d bytes)\n", path, len(buf))
	return nil
}

func fleetHTML(st fleet.FleetStatus) string {
	var maxVec uint64 = 1
	for _, c := range st.Campaigns {
		if c.Vectors > maxVec {
			maxVec = c.Vectors
		}
	}
	out := `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>SymbFuzz fleet rollup</title>
<style>
body{font-family:system-ui,sans-serif;margin:2em;color:#222}
h1{font-size:1.3em} h2{font-size:1.1em;margin-top:1.5em}
table{border-collapse:collapse;font-size:0.9em}
th,td{border:1px solid #ccc;padding:0.35em 0.6em;text-align:right}
th{background:#f0f0f0} td.name{text-align:left;font-weight:600}
td.state-running{color:#06c} td.state-done{color:#080}
td.state-cancelled,td.state-budget-stop{color:#a50}
.bar{fill:#4a90d9}
</style></head><body>
<h1>SymbFuzz fleet rollup</h1>
`
	out += fmt.Sprintf("<p>%d campaign(s), coordinator up %s.</p>\n",
		len(st.Campaigns), time.Duration(st.UptimeNS).Round(time.Second))

	out += `<h2>Campaigns</h2>
<table><tr><th>campaign</th><th>state</th><th>ranks</th><th>done</th>
<th>vectors</th><th>points</th><th>solver s</th></tr>
`
	for _, c := range st.Campaigns {
		state := campState(c)
		out += fmt.Sprintf("<tr><td class=\"name\">%s</td><td class=\"state-%s\">%s</td>"+
			"<td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.1f</td></tr>\n",
			html.EscapeString(c.Campaign), state, state,
			c.Workers, c.RanksDone, c.Vectors, c.Points, float64(c.SolverNS)/1e9)
	}
	out += "</table>\n"

	out += `<h2>Admission &amp; queue telemetry</h2>
<table><tr><th>campaign</th><th>queue depth</th><th>queue bytes</th>
<th>batches</th><th>429 rejections</th><th>dropped</th></tr>
`
	for _, c := range st.Campaigns {
		out += fmt.Sprintf("<tr><td class=\"name\">%s</td><td>%d</td><td>%d</td>"+
			"<td>%d</td><td>%d</td><td>%d</td></tr>\n",
			html.EscapeString(c.Campaign),
			c.QueueDepth, c.QueueBytes, c.Batches, c.Rejected429, c.Dropped)
	}
	out += "</table>\n"

	// Vector-progress bars: one SVG, scale fixed by the busiest
	// campaign so the rendering is a pure function of the document.
	barH, gap, width := 22, 6, 420
	svgH := len(st.Campaigns)*(barH+gap) + gap
	out += fmt.Sprintf("<h2>Vectors by campaign</h2>\n<svg width=\"%d\" height=\"%d\" role=\"img\">\n",
		width+160, svgH)
	for i, c := range st.Campaigns {
		y := gap + i*(barH+gap)
		w := int(uint64(width) * c.Vectors / maxVec)
		out += fmt.Sprintf("<text x=\"0\" y=\"%d\" font-size=\"12\">%s</text>\n",
			y+barH-7, html.EscapeString(c.Campaign))
		out += fmt.Sprintf("<rect class=\"bar\" x=\"150\" y=\"%d\" width=\"%d\" height=\"%d\"></rect>\n",
			y, w, barH)
		out += fmt.Sprintf("<text x=\"%d\" y=\"%d\" font-size=\"11\">%d</text>\n",
			150+w+4, y+barH-7, c.Vectors)
	}
	out += "</svg>\n</body></html>\n"
	return out
}

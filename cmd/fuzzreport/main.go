// Command fuzzreport turns a SymbFuzz campaign trace (the JSONL stream
// written by symbfuzz -trace, or a coordinator's merged multi-rank
// trace) into a campaign report: coverage over time per rank, the top
// solves ranked by coverage unlocked (counting cross-rank plan
// reuses), the unsolved-target table, the per-rank solver time
// breakdown, and — when the trace spans processes — the reconstructed
// cross-process causal chain.
//
// The terminal report goes to stdout; -html writes a self-contained
// HTML file (inline CSS + SVG, no external assets) whose bytes depend
// only on the trace, so re-rendering the same trace is byte-identical.
//
// Usage:
//
//	fuzzreport trace.jsonl
//	fuzzreport -html report.html trace.jsonl
//	symbfuzz ... -trace /dev/stdout | fuzzreport -
//	fuzzreport -fleet [-html rollup.html] fleet.json
//
// With -fleet the input is not a trace but the whole-fleet rollup
// JSON from `fuzzctl fleet -out` (the /v1/fleet document); the report
// is then one row per campaign with its admission/queue telemetry.
//
// Exit status 0 on a valid trace, 1 otherwise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	htmlOut := flag.String("html", "", "write a self-contained HTML report to this path")
	fleetIn := flag.Bool("fleet", false, "input is a fleet rollup JSON (from fuzzctl fleet -out), not a trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fuzzreport [-fleet] [-html report.html] <trace.jsonl | fleet.json | ->")
		os.Exit(1)
	}

	var data []byte
	var err error
	if flag.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fail(err)
	}

	if *fleetIn {
		if err := runFleetReport(data, *htmlOut); err != nil {
			fail(err)
		}
		return
	}

	if _, err := obs.ValidateTrace(bytes.NewReader(data)); err != nil {
		fail(fmt.Errorf("invalid trace: %w", err))
	}
	events, err := obs.ReadEvents(bytes.NewReader(data))
	if err != nil {
		fail(err)
	}
	rep, err := obs.BuildCampaignReport(events)
	if err != nil {
		fail(err)
	}

	obs.RenderText(os.Stdout, rep)

	if *htmlOut != "" {
		var buf bytes.Buffer
		if err := obs.RenderHTML(&buf, rep); err != nil {
			fail(err)
		}
		if err := os.WriteFile(*htmlOut, buf.Bytes(), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote HTML report to %s (%d bytes)\n", *htmlOut, buf.Len())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fuzzreport:", err)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/prof"
)

// item is one treemap tile: a label and a deterministic weight.
type item struct {
	label  string
	weight int64
}

// cell is a laid-out tile in character coordinates.
type cell struct {
	item
	x, y, w, h int
}

// layoutTreemap places items (sorted descending by weight, ties by
// label — the caller guarantees order) into a w×h character grid with
// a recursive binary slice-and-dice: split the item list into two
// weight-balanced halves, split the rectangle along its longer axis
// proportionally, recurse. Purely integer arithmetic on deterministic
// weights, so the layout is stable across runs.
func layoutTreemap(items []item, w, h int) []cell {
	var out []cell
	layoutRect(items, 0, 0, w, h, &out)
	return out
}

func layoutRect(items []item, x, y, w, h int, out *[]cell) {
	if len(items) == 0 || w <= 0 || h <= 0 {
		return
	}
	if len(items) == 1 {
		*out = append(*out, cell{item: items[0], x: x, y: y, w: w, h: h})
		return
	}
	var total int64
	for _, it := range items {
		total += it.weight
	}
	if total <= 0 {
		total = int64(len(items)) // degenerate: equal split
	}
	// Walk until the prefix holds at least half the weight (always at
	// least one item, never all of them).
	var acc int64
	cut := 1
	for i := 0; i < len(items)-1; i++ {
		wt := items[i].weight
		if wt <= 0 {
			wt = 1
		}
		acc += wt
		cut = i + 1
		if acc*2 >= total {
			break
		}
	}
	var left int64
	for _, it := range items[:cut] {
		wt := it.weight
		if wt <= 0 {
			wt = 1
		}
		left += wt
	}
	var all int64
	for _, it := range items {
		wt := it.weight
		if wt <= 0 {
			wt = 1
		}
		all += wt
	}
	if w >= h {
		lw := int(int64(w) * left / all)
		if lw < 1 {
			lw = 1
		}
		if lw >= w {
			lw = w - 1
		}
		layoutRect(items[:cut], x, y, lw, h, out)
		layoutRect(items[cut:], x+lw, y, w-lw, h, out)
	} else {
		lh := int(int64(h) * left / all)
		if lh < 1 {
			lh = 1
		}
		if lh >= h {
			lh = h - 1
		}
		layoutRect(items[:cut], x, y, w, lh, out)
		layoutRect(items[cut:], x, y+lh, w, h-lh, out)
	}
}

// renderTreemap draws laid-out cells as ASCII boxes with labels.
func renderTreemap(cells []cell, w, h int) string {
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	put := func(x, y int, b byte) {
		if x >= 0 && x < w && y >= 0 && y < h {
			grid[y][x] = b
		}
	}
	for _, c := range cells {
		for i := 0; i < c.w; i++ {
			put(c.x+i, c.y, '-')
			put(c.x+i, c.y+c.h-1, '-')
		}
		for i := 0; i < c.h; i++ {
			put(c.x, c.y+i, '|')
			put(c.x+c.w-1, c.y+i, '|')
		}
		put(c.x, c.y, '+')
		put(c.x+c.w-1, c.y, '+')
		put(c.x, c.y+c.h-1, '+')
		put(c.x+c.w-1, c.y+c.h-1, '+')
		if c.w >= 4 && c.h >= 3 {
			label := c.label
			if len(label) > c.w-2 {
				label = label[:c.w-2]
			}
			for i := 0; i < len(label); i++ {
				put(c.x+1+i, c.y+1, label[i])
			}
		}
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// flameNode is the d3-flamegraph-compatible hierarchy node.
type flameNode struct {
	Name     string       `json:"name"`
	Value    int64        `json:"value"`
	Children []*flameNode `json:"children,omitempty"`
}

// flameJSON converts a dump into a flamegraph hierarchy. Values are
// the deterministic cost counters — simulator evals on sim leaves, CNF
// clauses on solver leaves (infeasible/zero-clause dispatches count 1
// each so they stay visible) — so the JSON is byte-identical across
// runs of the same seed.
func flameJSON(d *prof.Dump) ([]byte, error) {
	root := &flameNode{Name: fmt.Sprintf("campaign %s seed %d", d.Bench, d.Seed)}
	for _, r := range d.Ranks {
		rn := &flameNode{Name: fmt.Sprintf("rank %d", r.Rank)}
		sim := &flameNode{Name: "sim"}
		for _, s := range r.Sim {
			v := int64(s.Evals)
			sim.Value += v
			sim.Children = append(sim.Children, &flameNode{
				Name:  fmt.Sprintf("%s (%s L%d)", s.Proc, s.Kind, s.Level),
				Value: v,
			})
		}
		solver := &flameNode{Name: "solver"}
		graphs := map[int]*flameNode{}
		for _, s := range r.Solver {
			g := graphs[s.Graph]
			if g == nil {
				g = &flameNode{Name: fmt.Sprintf("graph %d", s.Graph)}
				graphs[s.Graph] = g
				solver.Children = append(solver.Children, g)
			}
			v := s.Clauses
			if v <= 0 {
				v = s.Dispatches
			}
			g.Value += v
			solver.Value += v
			g.Children = append(g.Children, &flameNode{
				Name:  fmt.Sprintf("edge %d->%d", s.Graph, s.Edge),
				Value: v,
			})
		}
		if len(sim.Children) > 0 {
			rn.Children = append(rn.Children, sim)
		}
		if len(solver.Children) > 0 {
			rn.Children = append(rn.Children, solver)
		}
		rn.Value = sim.Value + solver.Value
		root.Value += rn.Value
		root.Children = append(root.Children, rn)
	}
	out, err := json.MarshalIndent(root, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

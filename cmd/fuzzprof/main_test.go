package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/prof"
)

func sampleDump() *prof.Dump {
	p := prof.New(prof.Options{Rank: 0})
	p.SolverDispatch(0, 3, prof.DispatchCost{Sat: false, Clauses: 800, Conflicts: 4, SlicedVars: 100})
	p.SolverDispatch(0, 5, prof.DispatchCost{Sat: true, Clauses: 60, SlicedVars: 7, Cache: prof.CacheMiss, BlastNS: 100})
	p.PlanUnlocked(0, 5, 5)
	p.SolverDispatch(1, 2, prof.DispatchCost{Sat: false, Infeasible: true})
	p.SetSim([]prof.SimEntry{
		{Proc: "regWrite", Kind: "seq", Level: -1, Evals: 2000, SampledEvals: 31, SampledNS: 9300},
		{Proc: "assign0", Kind: "comb", Level: 1, Evals: 1990},
	})
	d := prof.NewDump("scmi_mailbox", 7, p.Ledgers())
	d.Wire = []prof.WireEntry{{RPC: "report", Calls: 2, BytesIn: 100, BytesOut: 50, WallNS: 1000}}
	return d
}

// TestTreemapLayout pins the layout invariants: tiles are in-bounds,
// non-overlapping, tile the whole rectangle, and the layout is a pure
// function of the weights.
func TestTreemapLayout(t *testing.T) {
	items := []item{
		{label: "a", weight: 800}, {label: "b", weight: 60},
		{label: "c", weight: 30}, {label: "d", weight: 1},
	}
	const w, h = 40, 10
	cells := layoutTreemap(items, w, h)
	if len(cells) != len(items) {
		t.Fatalf("laid out %d of %d items", len(cells), len(items))
	}
	covered := map[[2]int]string{}
	area := 0
	for _, c := range cells {
		if c.x < 0 || c.y < 0 || c.x+c.w > w || c.y+c.h > h || c.w < 1 || c.h < 1 {
			t.Fatalf("tile out of bounds: %+v", c)
		}
		area += c.w * c.h
		for dx := 0; dx < c.w; dx++ {
			for dy := 0; dy < c.h; dy++ {
				k := [2]int{c.x + dx, c.y + dy}
				if prev, ok := covered[k]; ok {
					t.Fatalf("tiles %q and %q overlap at %v", prev, c.label, k)
				}
				covered[k] = c.label
			}
		}
	}
	if area != w*h {
		t.Fatalf("tiles cover %d cells, want %d", area, w*h)
	}

	again := layoutTreemap(items, w, h)
	r1, r2 := renderTreemap(cells, w, h), renderTreemap(again, w, h)
	if r1 != r2 {
		t.Fatal("treemap render is not deterministic")
	}
}

// TestRenderReportDeterministic renders the same dump twice and checks
// the report carries the ledger's key numbers.
func TestRenderReportDeterministic(t *testing.T) {
	d := sampleDump()
	var b1, b2 bytes.Buffer
	renderReport(&b1, d, 10, 72)
	renderReport(&b2, d, 10, 72)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("report render is not deterministic")
	}
	out := b1.String()
	for _, want := range []string{
		"scmi_mailbox seed 7", "3 solver dispatches", "1 infeasible",
		"g0:e3", "regWrite", "coordinator wire ledger",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestFlameJSON checks the hierarchy invariant flamegraph consumers
// rely on: every parent's value is the sum of its children.
func TestFlameJSON(t *testing.T) {
	data, err := flameJSON(sampleDump())
	if err != nil {
		t.Fatal(err)
	}
	var root flameNode
	if err := json.Unmarshal(data, &root); err != nil {
		t.Fatal(err)
	}
	var check func(n *flameNode)
	check = func(n *flameNode) {
		if len(n.Children) == 0 {
			return
		}
		var sum int64
		for _, c := range n.Children {
			sum += c.Value
			check(c)
		}
		if sum != n.Value {
			t.Errorf("node %q value %d != children sum %d", n.Name, n.Value, sum)
		}
	}
	check(&root)
	if root.Value == 0 {
		t.Error("empty flamegraph")
	}
}

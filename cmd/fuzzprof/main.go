// Command fuzzprof explores a SymbFuzz campaign cost ledger (the JSON
// dump written by symbfuzz -prof): where simulator and solver effort
// went, keyed to design constructs — IR processes on the simulator
// side, CFG targets on the solver side.
//
// The terminal report renders a treemap of solver cost by CFG target,
// the hot-process and hot-target tables, the cumulative
// coverage-unlocked-per-cost curve, and (for distributed campaigns)
// the coordinator's per-RPC wire tally. All visuals are sized by the
// ledger's deterministic counters, so re-rendering the same dump is
// byte-identical.
//
// Usage:
//
//	fuzzprof prof.json                  # terminal report
//	fuzzprof -flame flame.json prof.json  # flamegraph-compatible JSON
//	fuzzprof -canonical prof.json       # canonical (annotation-free) dump
//
// -canonical prints the dump with every wall-clock annotation
// stripped; for a fixed seed its bytes are identical across runs,
// worker counts, and the in-process vs. distributed orchestrators —
// CI diffs it across orchestrators as the determinism gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/prof"
)

func main() {
	canonical := flag.Bool("canonical", false, "print the canonical dump (annotations stripped) and exit")
	flameOut := flag.String("flame", "", "write flamegraph-compatible JSON ({name,value,children}) to this path")
	topN := flag.Int("top", 10, "rows in the hot-process / hot-target tables")
	width := flag.Int("width", 72, "treemap width in characters")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fuzzprof [-canonical] [-flame out.json] [-top N] <prof.json>")
		os.Exit(1)
	}

	d, err := prof.ReadDump(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	if *canonical {
		out, err := d.Canonical().MarshalIndent()
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(out)
		return
	}

	if *flameOut != "" {
		data, err := flameJSON(d)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*flameOut, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("flamegraph JSON: %s\n", *flameOut)
	}

	renderReport(os.Stdout, d, *topN, *width)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fuzzprof:", err)
	os.Exit(1)
}

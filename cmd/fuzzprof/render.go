package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/prof"
)

// renderReport writes the terminal cost report. Everything except the
// explicitly-marked annotation columns is derived from deterministic
// counters, so the same dump always renders the same bytes.
func renderReport(w io.Writer, d *prof.Dump, topN, width int) {
	fmt.Fprintf(w, "campaign cost ledger: %s seed %d, %d rank(s)\n", d.Bench, d.Seed, d.Workers)
	t := d.Totals
	fmt.Fprintf(w, "totals: %d sim evals; %d solver dispatches (%d sat, %d unsat, %d infeasible)\n",
		t.Evals, t.Dispatches, t.Sat, t.Unsat, t.Infeasible)
	fmt.Fprintf(w, "        %d clauses, %d conflicts, %d restarts; %d vars sliced away; %d coverage points unlocked\n",
		t.Clauses, t.Conflicts, t.Restarts, t.SlicedVars, t.Unlocked)

	solver, sim := mergeSolver(d), mergeSim(d)

	if len(solver) > 0 {
		fmt.Fprintf(w, "\nsolver cost treemap (CNF clauses per CFG target):\n")
		items := make([]item, 0, len(solver))
		for _, s := range solver {
			wt := s.Clauses
			if wt <= 0 {
				wt = s.Dispatches
			}
			items = append(items, item{label: fmt.Sprintf("g%d:e%d %s", s.Graph, s.Edge, pctOf(s.Clauses, t.Clauses)), weight: wt})
		}
		sort.SliceStable(items, func(i, j int) bool {
			if items[i].weight != items[j].weight {
				return items[i].weight > items[j].weight
			}
			return items[i].label < items[j].label
		})
		if len(items) > 24 {
			var rest int64
			for _, it := range items[24:] {
				rest += it.weight
			}
			items = append(items[:24], item{label: fmt.Sprintf("+%d more", len(solver)-24), weight: rest})
		}
		height := 12
		if len(items) <= 4 {
			height = 8
		}
		fmt.Fprint(w, renderTreemap(layoutTreemap(items, width, height), width, height))
	}

	if len(solver) > 0 {
		fmt.Fprintf(w, "\ntop solver targets by clauses:\n")
		fmt.Fprintf(w, "  %-10s %6s %5s %6s %5s %9s %9s %7s %8s %10s\n",
			"target", "disp", "sat", "unsat", "infea", "clauses", "conflicts", "sliced", "unlocked", "clauses/pt")
		rows := append([]prof.SolverEntry(nil), solver...)
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Clauses > rows[j].Clauses })
		for i, s := range rows {
			if i >= topN {
				fmt.Fprintf(w, "  ... %d more targets\n", len(rows)-topN)
				break
			}
			per := "-"
			if s.Unlocked > 0 {
				per = fmt.Sprintf("%d", s.Clauses/s.Unlocked)
			}
			fmt.Fprintf(w, "  g%-2d e%-5d %6d %5d %6d %5d %9d %9d %7d %8d %10s\n",
				s.Graph, s.Edge, s.Dispatches, s.Sat, s.Unsat, s.Infeasible,
				s.Clauses, s.Conflicts, s.SlicedVars, s.Unlocked, per)
		}
	}

	if len(sim) > 0 {
		fmt.Fprintf(w, "\nhot simulator processes (levelized; ns/eval is a sampled annotation):\n")
		fmt.Fprintf(w, "  %-40s %-4s %5s %12s %9s\n", "process", "kind", "level", "evals", "ns/eval")
		rows := append([]prof.SimEntry(nil), sim...)
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Evals > rows[j].Evals })
		for i, s := range rows {
			if i >= topN {
				fmt.Fprintf(w, "  ... %d more processes\n", len(rows)-topN)
				break
			}
			ns := "-"
			if s.SampledEvals > 0 {
				ns = fmt.Sprintf("%d", s.SampledNS/int64(s.SampledEvals))
			}
			lvl := fmt.Sprintf("%d", s.Level)
			if s.Level < 0 {
				lvl = "-"
			}
			fmt.Fprintf(w, "  %-40s %-4s %5s %12d %9s\n", trunc(s.Proc, 40), s.Kind, lvl, s.Evals, ns)
		}
	}

	if curve := mergeCurve(d); len(curve) > 1 {
		fmt.Fprintf(w, "\ncoverage unlocked per solver cost (cumulative, %d dispatches):\n", len(curve))
		fmt.Fprint(w, renderCurve(curve, width))
	}

	if len(d.Wire) > 0 {
		fmt.Fprintf(w, "\ncoordinator wire ledger (annotation — timer-driven, not reproducible):\n")
		fmt.Fprintf(w, "  %-10s %8s %12s %12s %12s\n", "rpc", "calls", "bytes in", "bytes out", "wall")
		for _, e := range d.Wire {
			fmt.Fprintf(w, "  %-10s %8d %12d %12d %12s\n",
				e.RPC, e.Calls, e.BytesIn, e.BytesOut, time.Duration(e.WallNS).Round(time.Microsecond))
		}
	}
}

// mergeSolver folds per-rank solver entries into campaign-wide
// per-target entries, ordered by (graph, edge).
func mergeSolver(d *prof.Dump) []prof.SolverEntry {
	byKey := map[[2]int]*prof.SolverEntry{}
	var keys [][2]int
	for _, r := range d.Ranks {
		for _, s := range r.Solver {
			k := [2]int{s.Graph, s.Edge}
			e := byKey[k]
			if e == nil {
				cp := s
				byKey[k] = &cp
				keys = append(keys, k)
				continue
			}
			e.Dispatches += s.Dispatches
			e.Sat += s.Sat
			e.Unsat += s.Unsat
			e.CacheLookups += s.CacheLookups
			e.Clauses += s.Clauses
			e.Conflicts += s.Conflicts
			e.Restarts += s.Restarts
			e.SlicedVars += s.SlicedVars
			e.Infeasible += s.Infeasible
			e.Unlocked += s.Unlocked
			e.CacheHits += s.CacheHits
			e.CacheMisses += s.CacheMisses
			e.BlastNS += s.BlastNS
			e.SolveNS += s.SolveNS
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]prof.SolverEntry, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

// mergeSim folds per-rank sim entries into campaign-wide per-process
// entries, keeping rank 0's process order (static per design).
func mergeSim(d *prof.Dump) []prof.SimEntry {
	byProc := map[string]*prof.SimEntry{}
	var order []string
	for _, r := range d.Ranks {
		for _, s := range r.Sim {
			e := byProc[s.Proc]
			if e == nil {
				cp := s
				byProc[s.Proc] = &cp
				order = append(order, s.Proc)
				continue
			}
			e.Evals += s.Evals
			e.SampledEvals += s.SampledEvals
			e.SampledNS += s.SampledNS
		}
	}
	out := make([]prof.SimEntry, 0, len(order))
	for _, p := range order {
		out = append(out, *byProc[p])
	}
	return out
}

// mergeCurve concatenates rank curves in rank order, renumbering the
// dispatch axis so the x axis is campaign-cumulative.
func mergeCurve(d *prof.Dump) []prof.CostPoint {
	var out []prof.CostPoint
	var baseN, baseC, baseK, baseU int64
	for _, r := range d.Ranks {
		var last prof.CostPoint
		for _, p := range r.Curve {
			out = append(out, prof.CostPoint{
				Dispatch:  baseN + p.Dispatch,
				Clauses:   baseC + p.Clauses,
				Conflicts: baseK + p.Conflicts,
				Unlocked:  baseU + p.Unlocked,
			})
			last = p
		}
		baseN += last.Dispatch
		baseC += last.Clauses
		baseK += last.Conflicts
		baseU += last.Unlocked
	}
	return out
}

// renderCurve draws unlocked-coverage (y) against cumulative clauses
// (x) as a fixed-height ASCII plot.
func renderCurve(curve []prof.CostPoint, width int) string {
	const height = 8
	maxC, maxU := curve[len(curve)-1].Clauses, int64(0)
	for _, p := range curve {
		if p.Unlocked > maxU {
			maxU = p.Unlocked
		}
	}
	if maxC == 0 || maxU == 0 {
		return "  (no cost or no unlocked coverage to plot)\n"
	}
	cols := make([]int64, width)
	for i := range cols {
		cols[i] = -1
	}
	for _, p := range curve {
		x := int(p.Clauses * int64(width-1) / maxC)
		if p.Unlocked > cols[x] {
			cols[x] = p.Unlocked
		}
	}
	// Carry forward so gaps plot the running value.
	run := int64(0)
	for i := range cols {
		if cols[i] < 0 {
			cols[i] = run
		} else {
			run = cols[i]
		}
	}
	var rows [height]string
	for y := 0; y < height; y++ {
		line := make([]byte, width)
		thresh := maxU * int64(height-y) / int64(height)
		for x := 0; x < width; x++ {
			if cols[x] >= thresh && thresh > 0 {
				line[x] = '#'
			} else {
				line[x] = ' '
			}
		}
		rows[y] = string(line)
	}
	out := ""
	for y, r := range rows {
		label := "        "
		if y == 0 {
			label = fmt.Sprintf("%7d ", maxU)
		}
		if y == height-1 {
			label = fmt.Sprintf("%7d ", 0)
		}
		out += "  " + label + "|" + r + "\n"
	}
	out += fmt.Sprintf("          +%s\n", repeatByte('-', width))
	out += fmt.Sprintf("           0 clauses%s%d\n", repeatByte(' ', max(1, width-len(fmt.Sprintf("0 clauses%d", maxC)))), maxC)
	return out
}

func repeatByte(b byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return string(s)
}

func pctOf(part, total int64) string {
	if total <= 0 {
		return ""
	}
	return fmt.Sprintf("%d%%", part*100/total)
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}

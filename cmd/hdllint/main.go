// Command hdllint runs the static-analysis pass over a design and
// reports diagnostics: combinational loops, inferred latches, multiple
// drivers, unused/undriven signals, width truncations, and SMT-proven
// dead if/case arms.
//
// With no arguments it lints every builtin benchmark in
// internal/designs, applying the accepted-findings waiver registry.
// Exit status is non-zero when any error-severity diagnostic remains.
//
// Usage:
//
//	hdllint                      # all builtin designs
//	hdllint -bench uart          # one builtin design
//	hdllint -src d.sv -top m     # external source
//	hdllint -json                # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/designs"
	"repro/internal/elab"
	"repro/internal/hdl"
	"repro/internal/lint"
)

func main() {
	var (
		bench      = flag.String("bench", "", "builtin benchmark name (default: all)")
		srcF       = flag.String("src", "", "HDL source file")
		top        = flag.String("top", "", "top module (with -src)")
		jsonOut    = flag.Bool("json", false, "emit diagnostics as JSON")
		noWaivers  = flag.Bool("no-waivers", false, "ignore the builtin waiver registry")
		listChecks = flag.Bool("checks", false, "list the check catalogue and exit")
		werror     = flag.Bool("werror", false, "treat warnings as errors for the exit status")
		factsOut   = flag.Bool("facts", false, "emit the dataflow analysis facts (value ranges, levels, cones, dead arms) as JSON and exit")
	)
	flag.Parse()

	if *listChecks {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-14s %s\n", c.ID(), c.Description())
		}
		return
	}

	type job struct {
		name   string
		design *elab.Design
		opts   lint.Options
	}
	var jobs []job

	switch {
	case *srcF != "":
		if *top == "" {
			fail(fmt.Errorf("-top is required with -src"))
		}
		data, err := os.ReadFile(*srcF)
		if err != nil {
			fail(err)
		}
		ast, err := hdl.Parse(string(data))
		if err != nil {
			fail(err)
		}
		d, err := elab.Elaborate(ast, *top, nil)
		if err != nil {
			fail(err)
		}
		jobs = append(jobs, job{name: *top, design: d})
	default:
		benches := designs.AllBenchmarks()
		if *bench != "" {
			b, ok := designs.FindBenchmark(*bench)
			if !ok {
				fail(fmt.Errorf("unknown benchmark %q", *bench))
			}
			benches = []*designs.Benchmark{b}
		}
		for _, b := range benches {
			d, err := b.Elaborate()
			if err != nil {
				fail(err)
			}
			opts := lint.Options{ExternalReads: b.ExternalSignals()}
			if !*noWaivers {
				opts.Waivers = lint.BuiltinWaivers(b.Name)
			}
			jobs = append(jobs, job{name: b.Name, design: d, opts: opts})
		}
	}

	if *factsOut {
		// The -facts dump couples the IR-level dataflow pass (value
		// ranges, levelized order, cones) with the lint prover's
		// reachability facts for the same design.
		type factsRecord struct {
			analysis.Dump
			DeadArms     map[int][]int `json:"dead_arms,omitempty"`
			StaticProofs int           `json:"static_proofs"`
			SolverQuery  int           `json:"solver_queries"`
		}
		var records []factsRecord
		for _, j := range jobs {
			res := lint.Run(j.design, j.opts)
			rec := factsRecord{
				Dump:         analysis.Analyze(j.design).DumpFacts(),
				StaticProofs: res.Facts.StaticProofs,
				SolverQuery:  res.Facts.SolverQueries,
			}
			rec.Design = j.name
			if len(res.Facts.DeadArms) > 0 {
				rec.DeadArms = res.Facts.DeadArms
			}
			records = append(records, rec)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fail(err)
		}
		return
	}

	errs, warns := 0, 0
	var results []*lint.Result
	for _, j := range jobs {
		res := lint.Run(j.design, j.opts)
		res.Design = j.name
		results = append(results, res)
		errs += res.Errors()
		warns += res.Warnings()
		if !*jsonOut {
			res.WriteText(os.Stdout)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fail(err)
		}
	}
	if errs > 0 || (*werror && warns > 0) {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hdllint:", err)
	os.Exit(1)
}

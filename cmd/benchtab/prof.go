package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/prof"
)

// The prof experiment measures what cost profiling costs: the same
// fixed-budget bus_arb campaign runs with a Profiler attached (eval
// counting, sampled eval timing, per-target solver ledgers) and with
// the nil-profiler no-op path. Runs interleave and each arm keeps its
// minimum wall time, mirroring the flight experiment. As a free side
// check, the canonical ledgers of the interleaved profiled runs must
// be byte-identical — the determinism contract under the load the
// benchmark itself generates. The record is written as BENCH_prof.json
// and the experiment fails if profiling costs more than 5% wall time.

// ProfBench is the BENCH_prof.json record.
type ProfBench struct {
	Schema string `json:"schema"`
	Bench  string `json:"bench"`
	Budget uint64 `json:"budget"`
	Runs   int    `json:"runs"`
	Cores  int    `json:"cores"`
	Seed   int64  `json:"seed"`
	Note   string `json:"note"`

	ProfWallNS   int64 `json:"prof_wall_ns"`
	NoProfWallNS int64 `json:"no_prof_wall_ns"`

	SimEvals         uint64 `json:"sim_evals"`
	SolverDispatches int64  `json:"solver_dispatches"`
	LedgerBytes      int    `json:"ledger_bytes"`

	// Overhead is profiling-on wall over profiling-off wall (min of
	// Runs interleaved runs per arm).
	Overhead float64 `json:"overhead"`
	Within5  bool    `json:"within_5pct"`
}

const profBudget = 20_000

func runProf(seed int64, runs int, outPath string, w io.Writer) error {
	if runs < 1 {
		runs = 3
	}
	b, ok := designs.FindBenchmark("bus_arb")
	if !ok {
		return fmt.Errorf("prof: bus_arb benchmark missing")
	}
	cc := core.Config{
		Interval:              100,
		Threshold:             2,
		MaxVectors:            profBudget,
		Seed:                  seed,
		UseSnapshots:          true,
		ContinueAfterCoverage: true,
	}

	campaign := func(p *prof.Profiler) (int64, error) {
		d, err := b.Elaborate()
		if err != nil {
			return 0, err
		}
		c := cc
		c.Prof = p
		eng, err := core.New(d, b.Properties, c)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := eng.Run(); err != nil {
			return 0, err
		}
		return time.Since(start).Nanoseconds(), nil
	}

	var rec ProfBench
	var canonRef []byte
	minProf, minPlain := int64(0), int64(0)
	for i := 0; i < runs; i++ {
		p := prof.New(prof.Options{})
		tn, err := campaign(p)
		if err != nil {
			return err
		}
		d := prof.NewDump("bus_arb", seed, p.Ledgers())
		canon, err := d.Canonical().MarshalIndent()
		if err != nil {
			return err
		}
		if canonRef == nil {
			canonRef = canon
			rec.SimEvals = d.Totals.Evals
			rec.SolverDispatches = d.Totals.Dispatches
			full, err := d.MarshalIndent()
			if err != nil {
				return err
			}
			rec.LedgerBytes = len(full)
		} else if !bytes.Equal(canon, canonRef) {
			return fmt.Errorf("prof: canonical ledger diverged between identical runs")
		}
		pn, err := campaign(nil)
		if err != nil {
			return err
		}
		if minProf == 0 || tn < minProf {
			minProf = tn
		}
		if minPlain == 0 || pn < minPlain {
			minPlain = pn
		}
	}

	rec.Schema = "symbfuzz-bench-prof/v1"
	rec.Bench = "bus_arb"
	rec.Budget = profBudget
	rec.Runs = runs
	rec.Cores = runtime.NumCPU()
	rec.Seed = seed
	rec.Note = "prof arm counts every sim eval, samples eval wall time, and keeps per-target " +
		"solver ledgers; the no-prof arm runs the engine's nil-profiler no-op path; each arm " +
		"keeps its minimum wall time over interleaved runs, and the profiled runs' canonical " +
		"ledgers are asserted byte-identical"
	rec.ProfWallNS = minProf
	rec.NoProfWallNS = minPlain
	rec.Overhead = float64(minProf) / float64(minPlain)
	rec.Within5 = rec.Overhead <= 1.05

	fmt.Fprintf(w, "Cost-profiler overhead (bus_arb, %d vectors, min of %d runs per arm)\n",
		profBudget, runs)
	fmt.Fprintf(w, "  prof on:  %10.2fms  (%d sim evals, %d dispatches, %d-byte ledger)\n",
		float64(rec.ProfWallNS)/1e6, rec.SimEvals, rec.SolverDispatches, rec.LedgerBytes)
	fmt.Fprintf(w, "  prof off: %10.2fms\n", float64(rec.NoProfWallNS)/1e6)
	fmt.Fprintf(w, "  overhead: %10.4fx\n", rec.Overhead)

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	if !rec.Within5 {
		return fmt.Errorf("prof: profiling costs %.2f%% wall time, budget is 5%%",
			(rec.Overhead-1)*100)
	}
	return nil
}

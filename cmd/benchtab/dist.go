package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/dist"
	"repro/internal/par"
)

// The dist experiment measures what the wire costs: the same
// 2-worker campaign runs once in-process (par orchestrator, shared
// memory) and once distributed (coordinator + workers speaking the
// /v1 HTTP protocol over loopback), both racing the global frontier
// to the coverage a single worker discovers on the budget. The two
// trajectories are identical by construction — the record isolates
// the protocol overhead (serialized publishes, remote plan cache,
// lease heartbeats) in the time-to-coverage and wall columns. The
// record is written as BENCH_dist.json.

// DistRow is one design's in-process vs distributed measurement.
type DistRow struct {
	Bench        string `json:"bench"`
	Budget       uint64 `json:"budget"`
	TargetPoints int    `json:"target_points"`

	InprocWallNS  int64 `json:"inproc_wall_ns"`
	InprocReached bool  `json:"inproc_reached"`
	DistWallNS    int64 `json:"dist_wall_ns"`
	DistReached   bool  `json:"dist_reached"`

	// WireOverhead is dist wall over in-process wall to the same
	// coverage target — the cost of crossing the loopback on every
	// interval-boundary publish and cache consultation.
	WireOverhead float64 `json:"wire_overhead"`

	// MergedEqual records that the two campaigns' merged reports agree
	// on the structural invariants (graph totals, pruning). Full
	// byte-parity only holds for fixed-budget campaigns — a
	// stop-at-target race truncates each worker at a wall-clock-
	// dependent vector count — so that contract lives in the dist
	// package tests, not here.
	MergedEqual bool `json:"merged_equal"`
}

// DistBench is the BENCH_dist.json record.
type DistBench struct {
	Schema  string    `json:"schema"`
	Workers int       `json:"workers"`
	Cores   int       `json:"cores"`
	Seed    int64     `json:"seed"`
	Note    string    `json:"note"`
	Rows    []DistRow `json:"rows"`
}

var distTargets = []struct {
	name   string
	budget uint64
}{
	{"scmi_mailbox", 3000},
	{"bus_arb", 8000},
}

func runDistExp(workers int, seed int64, outPath string, w io.Writer) error {
	if workers < 2 {
		workers = 2
	}
	bench := DistBench{
		Schema:  "symbfuzz-bench-dist/v1",
		Workers: workers,
		Cores:   runtime.NumCPU(),
		Seed:    seed,
		Note: "dist runs the full /v1 wire protocol over loopback HTTP in one OS process; " +
			"wire_overhead therefore excludes physical network latency but includes " +
			"serialization, the remote plan cache, and lease traffic",
	}
	for _, tgt := range distTargets {
		b, ok := designs.FindBenchmark(tgt.name)
		if !ok {
			return fmt.Errorf("dist: unknown benchmark %q", tgt.name)
		}
		row, err := measureDist(b, tgt.name, tgt.budget, workers, seed)
		if err != nil {
			return fmt.Errorf("dist: %s: %w", tgt.name, err)
		}
		bench.Rows = append(bench.Rows, *row)
	}

	fmt.Fprintf(w, "Distributed overhead (time to single-worker coverage, %d workers, loopback)\n", workers)
	fmt.Fprintf(w, "%-16s %8s %8s %14s %14s %10s %8s\n",
		"bench", "budget", "target", "inproc wall", "dist wall", "overhead", "parity")
	for _, r := range bench.Rows {
		parity := "ok"
		if !r.MergedEqual {
			parity = "MISMATCH"
		}
		fmt.Fprintf(w, "%-16s %8d %8d %12.2fms %12.2fms %9.2fx %8s\n",
			r.Bench, r.Budget, r.TargetPoints,
			float64(r.InprocWallNS)/1e6, float64(r.DistWallNS)/1e6,
			r.WireOverhead, parity)
	}

	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(out, '\n'), 0o644)
}

func measureDist(b *designs.Benchmark, benchName string, budget uint64, workers int, seed int64) (*DistRow, error) {
	cc := core.Config{
		Interval:              100,
		Threshold:             2,
		MaxVectors:            budget,
		Seed:                  seed,
		UseSnapshots:          true,
		ContinueAfterCoverage: true,
	}

	// Discovery: what does one lane reach on this budget?
	disc, err := par.Run(b.Elaborate, b.Properties, par.Config{Config: cc, Workers: 1})
	if err != nil {
		return nil, err
	}
	target := disc.Merged.FinalPoints

	// In-process: N workers race the shared-memory frontier.
	inproc, err := par.Run(b.Elaborate, b.Properties,
		par.Config{Config: cc, Workers: workers, StopAtPoints: target})
	if err != nil {
		return nil, err
	}

	// Distributed: the same campaign over the loopback wire.
	distRep, err := runLoopback(dist.CampaignSpec{
		Bench:                 benchName,
		Interval:              cc.Interval,
		Threshold:             cc.Threshold,
		MaxVectors:            cc.MaxVectors,
		Seed:                  cc.Seed,
		Workers:               workers,
		UseSnapshots:          cc.UseSnapshots,
		ContinueAfterCoverage: cc.ContinueAfterCoverage,
	}, target)
	if err != nil {
		return nil, err
	}

	row := &DistRow{
		Bench:         b.Name,
		Budget:        budget,
		TargetPoints:  target,
		InprocWallNS:  inproc.TimeToTargetNS,
		InprocReached: inproc.TimeToTargetNS > 0,
		DistWallNS:    distRep.TimeToTargetNS,
		DistReached:   distRep.TimeToTargetNS > 0,
		MergedEqual:   mergedAgree(inproc.Merged, distRep.Merged),
	}
	if row.InprocReached && row.DistReached {
		row.WireOverhead = float64(row.DistWallNS) / float64(row.InprocWallNS)
	}
	return row, nil
}

// runLoopback hosts a coordinator and workers worker goroutines over
// loopback HTTP and waits for the merged report.
func runLoopback(spec dist.CampaignSpec, stopAt int) (*par.Report, error) {
	co, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordConfig{
		Spec: spec, StopAtPoints: stopAt,
	})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, spec.Workers)
	for i := 0; i < spec.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = dist.RunWorker(ctx, dist.WorkerConfig{
				Addr:     co.Addr(),
				WorkerID: fmt.Sprintf("bench-w%d", i),
				RankHint: i,
			})
		}(i)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			return nil, fmt.Errorf("worker %d: %w", i, werr)
		}
	}
	rep, err := co.Wait(ctx)
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = co.Shutdown(sctx)
	cancel()
	return rep, err
}

// mergedAgree compares the campaign-invariant merged-report fields.
// Everything trajectory-dependent (bug lists, vector counts, final
// coverage past the target) varies with where the stop-at-target race
// truncates each worker, so only the elaboration-derived structure
// participates here.
func mergedAgree(a, b *core.Report) bool {
	return a.NodesTotal == b.NodesTotal &&
		a.EdgesTotal == b.EdgesTotal &&
		a.PrunedTargets == b.PrunedTargets
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/designs"
)

// The slice experiment measures what cone-of-influence slicing buys the
// solver: the same campaign (same seed, same budget) runs once with
// slicing on (the default engine path) and once with the DisableSlicing
// ablation, and the record compares mean per-dispatch bit-blast time.
// Slicing is trajectory-neutral — both arms must agree on coverage and
// solved plans — so the blast-time delta is attributable to the smaller
// queries alone. The record is written as BENCH_slice.json.

// SliceRow is one design's slicing measurement.
type SliceRow struct {
	Bench  string `json:"bench"`
	Budget uint64 `json:"budget"`

	Dispatches  int64 `json:"dispatches"`
	SolvedPlans int   `json:"solved_plans"`

	FullBlastNS   int64 `json:"full_mean_blast_ns"`
	SlicedBlastNS int64 `json:"sliced_mean_blast_ns"`
	FullSolveNS   int64 `json:"full_mean_solve_ns"`
	SlicedSolveNS int64 `json:"sliced_mean_solve_ns"`

	// BlastReduction is 1 - sliced/full mean blast time.
	BlastReduction float64 `json:"blast_reduction"`

	SlicedVars        int  `json:"sliced_vars"`
	InfeasibleTargets int  `json:"infeasible_targets"`
	CoverageAgrees    bool `json:"coverage_agrees"`
}

// SliceBench is the BENCH_slice.json record.
type SliceBench struct {
	Schema string     `json:"schema"`
	Seed   int64      `json:"seed"`
	Note   string     `json:"note"`
	Rows   []SliceRow `json:"rows"`
}

// sliceTargets reuses the par experiment's design/budget pairs: the SoC
// as the headline target and the bus arbiter as the small-design
// control.
var sliceTargets = parTargets

func runSlice(seed int64, outPath string, w io.Writer) error {
	bench := SliceBench{
		Schema: "symbfuzz-bench-slice/v1",
		Seed:   seed,
		Note: "both arms run the identical campaign (slicing is trajectory-neutral); " +
			"blast_reduction compares mean per-dispatch bit-blast wall time",
	}
	for _, tgt := range sliceTargets {
		b, ok := designs.FindBenchmark(tgt.name)
		if !ok {
			return fmt.Errorf("slice: unknown benchmark %q", tgt.name)
		}
		row, err := measureSlice(b, tgt.budget, seed)
		if err != nil {
			return fmt.Errorf("slice: %s: %w", tgt.name, err)
		}
		bench.Rows = append(bench.Rows, *row)
	}

	fmt.Fprintf(w, "Cone-of-influence slicing (mean per-dispatch solver time, sliced vs ablation)\n")
	fmt.Fprintf(w, "%-16s %8s %10s %12s %12s %10s %10s %8s\n",
		"bench", "budget", "dispatches", "full blast", "sliced blast",
		"reduction", "vars saved", "refuted")
	for _, r := range bench.Rows {
		fmt.Fprintf(w, "%-16s %8d %10d %10.2fus %10.2fus %9.1f%% %10d %8d\n",
			r.Bench, r.Budget, r.Dispatches,
			float64(r.FullBlastNS)/1e3, float64(r.SlicedBlastNS)/1e3,
			100*r.BlastReduction, r.SlicedVars, r.InfeasibleTargets)
		if !r.CoverageAgrees {
			fmt.Fprintf(w, "  WARNING: %s arms diverged — slicing is not trajectory-neutral here\n", r.Bench)
		}
	}

	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(out, '\n'), 0o644)
}

func measureSlice(b *designs.Benchmark, budget uint64, seed int64) (*SliceRow, error) {
	run := func(disable bool) (*core.Report, error) {
		d, err := b.Elaborate()
		if err != nil {
			return nil, err
		}
		eng, err := core.New(d, b.Properties, core.Config{
			Interval:              100,
			Threshold:             2,
			MaxVectors:            budget,
			Seed:                  seed,
			UseSnapshots:          true,
			ContinueAfterCoverage: true,
			DisableSlicing:        disable,
		})
		if err != nil {
			return nil, err
		}
		return eng.Run()
	}
	sliced, err := run(false)
	if err != nil {
		return nil, err
	}
	full, err := run(true)
	if err != nil {
		return nil, err
	}
	mean := func(total, n int64) int64 {
		if n == 0 {
			return 0
		}
		return total / n
	}
	fs, ss := &full.Timings.Solve, &sliced.Timings.Solve
	row := &SliceRow{
		Bench:             b.Name,
		Budget:            budget,
		Dispatches:        int64(ss.Dispatches),
		SolvedPlans:       sliced.SolvedPlans,
		FullBlastNS:       mean(fs.BlastNS, int64(fs.Dispatches)),
		SlicedBlastNS:     mean(ss.BlastNS, int64(ss.Dispatches)),
		FullSolveNS:       mean(fs.BlastNS+fs.CDCLNS, int64(fs.Dispatches)),
		SlicedSolveNS:     mean(ss.BlastNS+ss.CDCLNS, int64(ss.Dispatches)),
		SlicedVars:        sliced.SlicedVars,
		InfeasibleTargets: sliced.InfeasibleTargets,
		CoverageAgrees: sliced.FinalPoints == full.FinalPoints &&
			sliced.Vectors == full.Vectors &&
			sliced.SolvedPlans == full.SolvedPlans,
	}
	if row.FullBlastNS > 0 {
		row.BlastReduction = 1 - float64(row.SlicedBlastNS)/float64(row.FullBlastNS)
	}
	return row, nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/designs"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/par"
	"repro/internal/prof"
)

// The fleet experiment measures what the v4 batched wire saves and
// what a shared coordinator sustains. Arm one runs the same
// fixed-budget 2-worker campaign twice over loopback — once forced
// onto the v3 synchronous full-snapshot publish path (SyncPublish),
// once on the default delta-batched path — and compares the publish
// bytes the coordinator ingested. Both arms run the identical
// deterministic trajectory (same spec, same seeds, full budget), so
// the byte ratio isolates the encoding: full cumulative snapshots
// every interval vs deduplicated deltas flushed in batches, with
// empty deltas never sent at all. Arm two multiplexes several named
// campaigns on one fleet server and records the aggregate vector
// throughput across all ranks. The record is written as
// BENCH_fleet.json.

// FleetRow is one design's sync-publish vs delta-batch wire
// measurement.
type FleetRow struct {
	Bench   string `json:"bench"`
	Budget  uint64 `json:"budget"`
	Workers int    `json:"workers"`

	// SyncBytes / SyncCalls tally the /v1/publish request payloads of
	// the ablation arm; BatchBytes / BatchCalls tally the /v1/batch
	// request payloads of the default arm (its residual /v1/publish
	// traffic — the final full-coverage report each rank ships at
	// detach — is counted in BatchBytes too, so the ratio is honest
	// about everything the batched worker sends on the publish plane).
	SyncCalls  int64 `json:"sync_calls"`
	SyncBytes  int64 `json:"sync_bytes"`
	BatchCalls int64 `json:"batch_calls"`
	BatchBytes int64 `json:"batch_bytes"`

	// PublishReduction is SyncBytes over BatchBytes — how many times
	// smaller the delta-batched publish plane is for the same
	// campaign.
	PublishReduction float64 `json:"publish_reduction"`

	// MergedEqual records that both arms produced the same merged
	// coverage and vector totals — full-budget campaigns are
	// deterministic, so anything less is a wire bug.
	MergedEqual bool `json:"merged_equal"`
}

// FleetBench is the BENCH_fleet.json record.
type FleetBench struct {
	Schema string `json:"schema"`
	Cores  int    `json:"cores"`
	Seed   int64  `json:"seed"`
	Note   string `json:"note"`

	Rows []FleetRow `json:"rows"`

	// The multi-campaign arm: Campaigns concurrent named campaigns of
	// FleetWorkers ranks each on one fleet server, total vectors over
	// wall time.
	FleetCampaigns     int     `json:"fleet_campaigns"`
	FleetWorkers       int     `json:"fleet_workers_per_campaign"`
	FleetTotalVectors  uint64  `json:"fleet_total_vectors"`
	FleetWallNS        int64   `json:"fleet_wall_ns"`
	FleetVectorsPerSec float64 `json:"fleet_vectors_per_sec"`
}

var fleetTargets = []struct {
	name   string
	budget uint64
}{
	{"scmi_mailbox", 3000},
	{"bus_arb", 8000},
}

func runFleetExp(seed int64, outPath string, w io.Writer) error {
	const workers = 2
	bench := FleetBench{
		Schema: "symbfuzz-bench-fleet/v1",
		Cores:  runtime.NumCPU(),
		Seed:   seed,
		Note: "publish_reduction compares /v1/publish full-snapshot bytes (SyncPublish ablation) " +
			"against /v1/batch delta bytes for the identical fixed-budget campaign; " +
			"fleet_vectors_per_sec is aggregate throughput of concurrent campaigns multiplexed " +
			"on one fleet coordinator over loopback",
	}

	for _, tgt := range fleetTargets {
		if _, ok := designs.FindBenchmark(tgt.name); !ok {
			return fmt.Errorf("fleet: unknown benchmark %q", tgt.name)
		}
		row, err := measureWire(tgt.name, tgt.budget, workers, seed)
		if err != nil {
			return fmt.Errorf("fleet: %s: %w", tgt.name, err)
		}
		bench.Rows = append(bench.Rows, *row)
	}

	if err := measureFleetAggregate(&bench, seed); err != nil {
		return fmt.Errorf("fleet: aggregate: %w", err)
	}

	fmt.Fprintf(w, "Publish wire overhead (sync full snapshots vs delta batches, %d workers, full budget)\n", workers)
	fmt.Fprintf(w, "%-16s %8s %10s %12s %10s %12s %10s %8s\n",
		"bench", "budget", "sync rpcs", "sync bytes", "batch rpcs", "batch bytes", "reduction", "parity")
	for _, r := range bench.Rows {
		parity := "ok"
		if !r.MergedEqual {
			parity = "MISMATCH"
		}
		fmt.Fprintf(w, "%-16s %8d %10d %12d %10d %12d %9.2fx %8s\n",
			r.Bench, r.Budget, r.SyncCalls, r.SyncBytes, r.BatchCalls, r.BatchBytes,
			r.PublishReduction, parity)
	}
	fmt.Fprintf(w, "\nFleet aggregate: %d campaigns x %d workers, %d vectors in %.2fs = %.0f vectors/sec\n",
		bench.FleetCampaigns, bench.FleetWorkers, bench.FleetTotalVectors,
		float64(bench.FleetWallNS)/1e9, bench.FleetVectorsPerSec)

	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(out, '\n'), 0o644)
}

// measureWire runs the same campaign on both publish encodings and
// tallies what crossed the wire on the publish plane.
func measureWire(benchName string, budget uint64, workers int, seed int64) (*FleetRow, error) {
	spec := dist.CampaignSpec{
		Bench:                 benchName,
		Interval:              100,
		Threshold:             2,
		MaxVectors:            budget,
		Seed:                  seed,
		Workers:               workers,
		UseSnapshots:          true,
		ContinueAfterCoverage: true,
	}

	syncRep, syncWire, err := runWireArm(spec, true)
	if err != nil {
		return nil, fmt.Errorf("sync arm: %w", err)
	}
	batchRep, batchWire, err := runWireArm(spec, false)
	if err != nil {
		return nil, fmt.Errorf("batch arm: %w", err)
	}

	row := &FleetRow{Bench: benchName, Budget: budget, Workers: workers}
	for _, e := range syncWire {
		if e.RPC == "publish" {
			row.SyncCalls += e.Calls
			row.SyncBytes += e.BytesIn
		}
	}
	for _, e := range batchWire {
		if e.RPC == "batch" || e.RPC == "publish" {
			row.BatchCalls += e.Calls
			row.BatchBytes += e.BytesIn
		}
	}
	if row.BatchBytes > 0 {
		row.PublishReduction = float64(row.SyncBytes) / float64(row.BatchBytes)
	}
	row.MergedEqual = syncRep.Merged.Vectors == batchRep.Merged.Vectors &&
		syncRep.Merged.FinalPoints == batchRep.Merged.FinalPoints &&
		syncRep.Merged.NodesTotal == batchRep.Merged.NodesTotal &&
		syncRep.Merged.EdgesTotal == batchRep.Merged.EdgesTotal
	return row, nil
}

// runWireArm hosts a coordinator over loopback, runs the campaign's
// workers with the chosen publish encoding, and returns the merged
// report plus the coordinator's wire ledger.
func runWireArm(spec dist.CampaignSpec, syncPublish bool) (*par.Report, []prof.WireEntry, error) {
	co, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordConfig{Spec: spec})
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, spec.Workers)
	for i := 0; i < spec.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = dist.RunWorker(ctx, dist.WorkerConfig{
				Addr:        co.Addr(),
				WorkerID:    fmt.Sprintf("wire-w%d", i),
				RankHint:    i,
				SyncPublish: syncPublish,
			})
		}(i)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			return nil, nil, fmt.Errorf("worker %d: %w", i, werr)
		}
	}
	rep, err := co.Wait(ctx)
	ledger := co.WireLedger()
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = co.Shutdown(sctx)
	cancel()
	return rep, ledger, err
}

// measureFleetAggregate multiplexes campaigns on one fleet server and
// records the aggregate vector throughput.
func measureFleetAggregate(bench *FleetBench, seed int64) error {
	const (
		campaigns = 3
		workers   = 2
		budget    = 2000
	)
	dir, err := os.MkdirTemp("", "benchfleet")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := fleet.NewServer("127.0.0.1:0", fleet.Config{JournalDir: dir})
	if err != nil {
		return err
	}
	defer srv.Shutdown(context.Background())

	names := make([]string, campaigns)
	start := time.Now()
	for i := 0; i < campaigns; i++ {
		names[i] = fmt.Sprintf("bench-%d", i)
		req := fleet.CreateRequest{
			Name: names[i],
			Spec: dist.CampaignSpec{
				Bench:                 "scmi_mailbox",
				Interval:              100,
				Threshold:             2,
				MaxVectors:            budget,
				Seed:                  seed + int64(i),
				Workers:               workers,
				UseSnapshots:          true,
				ContinueAfterCoverage: true,
			},
		}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := http.Post("http://"+srv.Addr()+"/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("create %s: status %d", names[i], resp.StatusCode)
		}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, campaigns*workers)
	for c := 0; c < campaigns; c++ {
		for r := 0; r < workers; r++ {
			wg.Add(1)
			go func(c, r int) {
				defer wg.Done()
				errs[c*workers+r] = dist.RunWorker(ctx, dist.WorkerConfig{
					Addr:     srv.Addr(),
					Campaign: names[c],
					WorkerID: fmt.Sprintf("agg-c%d-w%d", c, r),
					RankHint: r,
				})
			}(c, r)
		}
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			return fmt.Errorf("worker %d: %w", i, werr)
		}
	}

	var total uint64
	for _, name := range names {
		rep, err := srv.WaitCampaign(ctx, name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		total += rep.Merged.Vectors
	}
	wall := time.Since(start)

	bench.FleetCampaigns = campaigns
	bench.FleetWorkers = workers
	bench.FleetTotalVectors = total
	bench.FleetWallNS = int64(wall)
	if wall > 0 {
		bench.FleetVectorsPerSec = float64(total) / wall.Seconds()
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/par"
)

// The par experiment measures time-to-coverage scaling of the parallel
// orchestrator. For each target design it runs three campaigns:
//
//  1. Discovery: a single worker burns the full vector budget and the
//     coverage it ends with becomes the target C.
//  2. Baseline: a single worker with the same seed re-runs with
//     StopAtPoints=C, timing how long one lane takes to reach C.
//  3. Parallel: N workers (same base seed, derived per-worker seeds)
//     run with StopAtPoints=C, timing how long the merged frontier
//     takes to reach the same coverage.
//
// Wall speedup on this machine is bounded by the available cores —
// workers are CPU-bound simulation lanes. The record therefore also
// carries the scheduling-independent measure (total vectors to target,
// which a k-core machine divides across lanes) and the wall ratio
// projected for a machine with at least `workers` cores. The record is
// written as BENCH_par.json — the repo's bench trajectory format.

// ParRow is one design's scaling measurement.
type ParRow struct {
	Bench        string `json:"bench"`
	Budget       uint64 `json:"budget"`
	TargetPoints int    `json:"target_points"`

	SingleWallNS int64  `json:"single_wall_ns"`
	SingleVec    uint64 `json:"single_vectors_to_target"`
	ParWallNS    int64  `json:"par_wall_ns"`
	ParVec       uint64 `json:"par_vectors_to_target"`
	ParReached   bool   `json:"par_reached"`

	// WallSpeedup is single wall over parallel wall on this machine.
	WallSpeedup float64 `json:"wall_speedup"`
	// VectorEfficiency is single vectors over summed parallel vectors
	// to the same target — 1.0 means seed diversity fully pays for the
	// split, i.e. wall scales with cores.
	VectorEfficiency float64 `json:"vector_efficiency"`
	// ProjectedWallRatio is par_wall/(workers*single_wall): the
	// expected parallel:single wall ratio on a machine with >= workers
	// cores, where the lanes actually run concurrently.
	ProjectedWallRatio float64 `json:"projected_wall_ratio"`
}

// ParBench is the BENCH_par.json record.
type ParBench struct {
	Schema  string   `json:"schema"`
	Workers int      `json:"workers"`
	Cores   int      `json:"cores"`
	Seed    int64    `json:"seed"`
	Note    string   `json:"note"`
	Rows    []ParRow `json:"rows"`
}

// parTargets maps the experiment's design names to their discovery
// budgets: the SoC is the paper's headline target, the bus arbiter the
// small-design control. Budgets are chosen so the discovery run ends on
// a coverage plateau — a target the union frontier reaches by seed
// diversity rather than by replaying one lane's deepest solver chain.
var parTargets = []struct {
	name   string
	budget uint64
}{
	{"opentitan_mini", 7000},
	{"bus_arb", 20000},
}

func runPar(workers int, seed int64, outPath string, w io.Writer) error {
	if workers < 2 {
		workers = 4
	}
	bench := ParBench{
		Schema:  "symbfuzz-bench-par/v1",
		Workers: workers,
		Cores:   runtime.NumCPU(),
		Seed:    seed,
		Note: "wall_speedup is measured on this machine and bounded by cores; " +
			"projected_wall_ratio assumes >= workers cores (lanes are CPU-bound and independent)",
	}
	for _, tgt := range parTargets {
		b, ok := designs.FindBenchmark(tgt.name)
		if !ok {
			return fmt.Errorf("par: unknown benchmark %q", tgt.name)
		}
		row, err := measurePar(b, tgt.budget, workers, seed)
		if err != nil {
			return fmt.Errorf("par: %s: %w", tgt.name, err)
		}
		bench.Rows = append(bench.Rows, *row)
	}

	fmt.Fprintf(w, "Parallel scaling (time to single-worker coverage, %d workers, %d cores)\n",
		workers, bench.Cores)
	fmt.Fprintf(w, "%-16s %8s %8s %12s %12s %8s %8s %10s\n",
		"bench", "budget", "target", "1w wall", fmt.Sprintf("%dw wall", workers),
		"speedup", "vec-eff", "proj-ratio")
	for _, r := range bench.Rows {
		status := fmt.Sprintf("%.2fx", r.WallSpeedup)
		if !r.ParReached {
			status = "miss"
		}
		fmt.Fprintf(w, "%-16s %8d %8d %10.2fms %10.2fms %8s %8.2f %10.2f\n",
			r.Bench, r.Budget, r.TargetPoints,
			float64(r.SingleWallNS)/1e6, float64(r.ParWallNS)/1e6,
			status, r.VectorEfficiency, r.ProjectedWallRatio)
	}

	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(out, '\n'), 0o644)
}

func measurePar(b *designs.Benchmark, budget uint64, workers int, seed int64) (*ParRow, error) {
	cfg := func(nworkers, stopAt int) par.Config {
		return par.Config{
			Config: core.Config{
				Interval:              100,
				Threshold:             2,
				MaxVectors:            budget,
				Seed:                  seed,
				UseSnapshots:          true,
				ContinueAfterCoverage: true,
			},
			Workers:      nworkers,
			StopAtPoints: stopAt,
		}
	}

	// Discovery: what does one lane reach on this budget?
	disc, err := par.Run(b.Elaborate, b.Properties, cfg(1, 0))
	if err != nil {
		return nil, err
	}
	target := disc.Merged.FinalPoints

	// Baseline: time for the same lane to get there.
	single, err := par.Run(b.Elaborate, b.Properties, cfg(1, target))
	if err != nil {
		return nil, err
	}

	// Parallel: N lanes race the merged frontier to the same target.
	parallel, err := par.Run(b.Elaborate, b.Properties, cfg(workers, target))
	if err != nil {
		return nil, err
	}

	row := &ParRow{
		Bench:        b.Name,
		Budget:       budget,
		TargetPoints: target,
		SingleWallNS: single.TimeToTargetNS,
		SingleVec:    vectorsToTarget(single, target),
		ParWallNS:    parallel.TimeToTargetNS,
		ParVec:       vectorsToTarget(parallel, target),
		ParReached:   parallel.TimeToTargetNS > 0,
	}
	if row.ParReached && row.ParWallNS > 0 && row.SingleWallNS > 0 {
		row.WallSpeedup = float64(row.SingleWallNS) / float64(row.ParWallNS)
		row.ProjectedWallRatio = float64(row.ParWallNS) /
			(float64(workers) * float64(row.SingleWallNS))
	}
	if row.ParVec > 0 {
		row.VectorEfficiency = float64(row.SingleVec) / float64(row.ParVec)
	}
	return row, nil
}

// vectorsToTarget reads the campaign curve for the summed vector count
// at which the global frontier first reached the target.
func vectorsToTarget(r *par.Report, target int) uint64 {
	for _, p := range r.Curve {
		if p.Points >= target {
			return p.Vectors
		}
	}
	return r.Merged.Vectors
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/obs"
)

// The flight experiment measures what the flight recorder costs: the
// same fixed-budget bus_arb campaign runs with the full span layer
// enabled (observer + JSONL tracer draining to io.Discard) and with a
// nil observer (the engine's no-op telemetry path). Runs interleave
// and each arm keeps its minimum wall time, so transient machine noise
// inflates neither side. The record is written as BENCH_flight.json
// and the experiment fails if spans cost more than 5% wall time.

// FlightBench is the BENCH_flight.json record.
type FlightBench struct {
	Schema string `json:"schema"`
	Bench  string `json:"bench"`
	Budget uint64 `json:"budget"`
	Runs   int    `json:"runs"`
	Cores  int    `json:"cores"`
	Seed   int64  `json:"seed"`
	Note   string `json:"note"`

	SpansWallNS   int64 `json:"spans_wall_ns"`
	NoSpansWallNS int64 `json:"no_spans_wall_ns"`
	TraceEvents   int   `json:"trace_events"`
	TraceSpans    int   `json:"trace_spans"`

	// Overhead is spans-enabled wall over spans-disabled wall (min of
	// Runs interleaved runs per arm).
	Overhead float64 `json:"overhead"`
	Within5  bool    `json:"within_5pct"`
}

const flightBudget = 20_000

func runFlight(seed int64, runs int, outPath string, w io.Writer) error {
	if runs < 1 {
		runs = 3
	}
	b, ok := designs.FindBenchmark("bus_arb")
	if !ok {
		return fmt.Errorf("flight: bus_arb benchmark missing")
	}
	cc := core.Config{
		Interval:              100,
		Threshold:             2,
		MaxVectors:            flightBudget,
		Seed:                  seed,
		UseSnapshots:          true,
		ContinueAfterCoverage: true,
	}

	campaign := func(o *obs.Observer) (int64, error) {
		d, err := b.Elaborate()
		if err != nil {
			return 0, err
		}
		c := cc
		c.Obs = o
		eng, err := core.New(d, b.Properties, c)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := eng.Run(); err != nil {
			return 0, err
		}
		return time.Since(start).Nanoseconds(), nil
	}

	// One counted traced run to size the trace, outside the timing arms.
	counter := &countTracer{}
	if _, err := campaign(obs.New(obs.Options{Tracer: counter})); err != nil {
		return err
	}

	minSpans, minPlain := int64(0), int64(0)
	for i := 0; i < runs; i++ {
		tn, err := campaign(obs.New(obs.Options{Tracer: obs.NewJSONLTracer(io.Discard)}))
		if err != nil {
			return err
		}
		pn, err := campaign(nil)
		if err != nil {
			return err
		}
		if minSpans == 0 || tn < minSpans {
			minSpans = tn
		}
		if minPlain == 0 || pn < minPlain {
			minPlain = pn
		}
	}

	rec := FlightBench{
		Schema: "symbfuzz-bench-flight/v1",
		Bench:  "bus_arb",
		Budget: flightBudget,
		Runs:   runs,
		Cores:  runtime.NumCPU(),
		Seed:   seed,
		Note: "spans arm drives the full observer + causal-span layer into a JSONL tracer " +
			"draining to io.Discard; the no-spans arm runs the engine's nil-observer no-op " +
			"path; each arm keeps its minimum wall time over interleaved runs",
		SpansWallNS:   minSpans,
		NoSpansWallNS: minPlain,
		TraceEvents:   counter.events,
		TraceSpans:    counter.spans,
		Overhead:      float64(minSpans) / float64(minPlain),
	}
	rec.Within5 = rec.Overhead <= 1.05

	fmt.Fprintf(w, "Flight-recorder overhead (bus_arb, %d vectors, min of %d runs per arm)\n",
		flightBudget, runs)
	fmt.Fprintf(w, "  spans on:  %10.2fms  (%d events, %d spans)\n",
		float64(rec.SpansWallNS)/1e6, rec.TraceEvents, rec.TraceSpans)
	fmt.Fprintf(w, "  spans off: %10.2fms\n", float64(rec.NoSpansWallNS)/1e6)
	fmt.Fprintf(w, "  overhead:  %10.4fx\n", rec.Overhead)

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	if !rec.Within5 {
		return fmt.Errorf("flight: span layer costs %.2f%% wall time, budget is 5%%",
			(rec.Overhead-1)*100)
	}
	return nil
}

// countTracer tallies events and spans without formatting them.
type countTracer struct {
	events int
	spans  int
}

func (c *countTracer) Emit(ev *obs.Event) {
	c.events++
	if ev.Type == obs.EvSpan {
		c.spans++
	}
}

func (c *countTracer) Close() error { return nil }

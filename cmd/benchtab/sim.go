package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/designs"
	"repro/internal/elab"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/simc"
)

// The sim experiment measures raw simulation throughput: for every
// builtin design, the same pre-generated stimulus stream is driven
// through the event-driven interpreter and the compiled closure
// backend, and each arm keeps its minimum wall time over interleaved
// runs. Because both backends replicate the same scheduler the
// trajectories are identical by construction (the differential harness
// in internal/simc/diff proves that); this experiment only asks how
// fast each gets there, plus how often the compiled backend's
// word-packed two-state fast path is taken. The record is written as
// BENCH_sim.json and gated by benchtab -diff.

// SimBenchRow is one design's throughput comparison.
type SimBenchRow struct {
	Design  string `json:"design"`
	Signals int    `json:"signals"`
	Procs   int    `json:"procs"`
	Cycles  int    `json:"cycles"`

	InterpVectorsPerSec   float64 `json:"interp_vectors_per_sec"`
	CompiledVectorsPerSec float64 `json:"compiled_vectors_per_sec"`
	Speedup               float64 `json:"speedup"`

	// TwoStateHitRate is the fraction of compiled kernel evaluations
	// that stayed on the all-known word-packed fast path (per design,
	// over the whole run including reset).
	TwoStateHitRate float64 `json:"two_state_hit_rate"`
}

// SimBench is the BENCH_sim.json record.
type SimBench struct {
	Schema string        `json:"schema"`
	Cycles int           `json:"cycles"`
	Runs   int           `json:"runs"`
	Cores  int           `json:"cores"`
	Seed   int64         `json:"seed"`
	Note   string        `json:"note"`
	Rows   []SimBenchRow `json:"rows"`

	// BestSpeedup summarizes the table: the largest compiled-over-
	// interpreter throughput ratio across designs.
	BestSpeedup float64 `json:"best_speedup"`
}

// simStim is a pre-generated stimulus stream: one vector per driven
// input per cycle, identical for both arms and excluded from the timed
// region so the measurement is simulator stepping, not rng cost.
type simStim struct {
	info   sim.ResetInfo
	inputs []*elab.Signal
	// vecs[c][i] drives inputs[i] at cycle c.
	vecs [][]logic.BV
}

func genStim(d *elab.Design, cycles int, seed int64) simStim {
	st := simStim{info: sim.DetectClockReset(d)}
	for _, in := range d.InputSignals() {
		if in.Index == st.info.Clock || in.Index == st.info.Reset {
			continue
		}
		st.inputs = append(st.inputs, in)
	}
	rng := rand.New(rand.NewSource(seed))
	st.vecs = make([][]logic.BV, cycles)
	for c := range st.vecs {
		row := make([]logic.BV, len(st.inputs))
		for i, in := range st.inputs {
			row[i] = logic.Rand(in.Width, rng.Uint64)
		}
		st.vecs[c] = row
	}
	return st
}

// driveStim runs the stimulus through a backend and returns the wall
// time of the stepping loop alone (construction and reset excluded).
func driveStim(s sim.DUV, st simStim) (int64, error) {
	if err := s.ApplyReset(st.info, 2); err != nil {
		return 0, err
	}
	start := time.Now()
	for _, row := range st.vecs {
		for i, in := range st.inputs {
			s.Set(in.Index, row[i])
		}
		if st.info.Clock >= 0 {
			if err := s.Tick(st.info.Clock); err != nil {
				return 0, err
			}
		} else {
			if err := s.Settle(); err != nil {
				return 0, err
			}
			s.AdvanceCycle()
		}
	}
	return time.Since(start).Nanoseconds(), nil
}

func runSimExp(cycles, runs int, seed int64, outPath string, w io.Writer) error {
	if cycles < 1 {
		cycles = 2000
	}
	if runs < 1 {
		runs = 3
	}
	rec := SimBench{
		Schema: "symbfuzz-bench-sim/v1",
		Cycles: cycles,
		Runs:   runs,
		Cores:  runtime.NumCPU(),
		Seed:   seed,
		Note: "identical pre-generated stimulus driven through the interpreter and the " +
			"compiled closure backend per design; each arm keeps its minimum stepping wall " +
			"time over interleaved runs; two_state_hit_rate is the fraction of compiled " +
			"kernel evaluations that stayed on the all-known word-packed fast path",
	}

	fmt.Fprintf(w, "Simulation backend throughput (%d vectors, min of %d runs per arm)\n", cycles, runs)
	fmt.Fprintf(w, "  %-16s %14s %14s %9s %9s\n", "design", "interp vec/s", "compiled vec/s", "speedup", "2-state")

	for _, b := range designs.AllBenchmarks() {
		d, err := b.Elaborate()
		if err != nil {
			return fmt.Errorf("sim: elaborate %s: %w", b.Name, err)
		}
		st := genStim(d, cycles, seed)
		var minInterp, minCompiled int64
		var hitRate float64
		for r := 0; r < runs; r++ {
			si, err := sim.New(d)
			if err != nil {
				return fmt.Errorf("sim: interp %s: %w", b.Name, err)
			}
			in, err := driveStim(si, st)
			if err != nil {
				return fmt.Errorf("sim: interp %s: %w", b.Name, err)
			}
			mc, err := simc.New(d)
			if err != nil {
				return fmt.Errorf("sim: compile %s: %w", b.Name, err)
			}
			cn, err := driveStim(mc, st)
			if err != nil {
				return fmt.Errorf("sim: compiled %s: %w", b.Name, err)
			}
			if minInterp == 0 || in < minInterp {
				minInterp = in
			}
			if minCompiled == 0 || cn < minCompiled {
				minCompiled = cn
			}
			hits, misses := mc.TwoStateStats()
			if total := hits + misses; total > 0 {
				hitRate = float64(hits) / float64(total)
			}
		}
		row := SimBenchRow{
			Design:                b.Name,
			Signals:               len(d.Signals),
			Procs:                 len(d.Procs),
			Cycles:                cycles,
			InterpVectorsPerSec:   float64(cycles) / (float64(minInterp) / 1e9),
			CompiledVectorsPerSec: float64(cycles) / (float64(minCompiled) / 1e9),
			TwoStateHitRate:       hitRate,
		}
		row.Speedup = row.CompiledVectorsPerSec / row.InterpVectorsPerSec
		if row.Speedup > rec.BestSpeedup {
			rec.BestSpeedup = row.Speedup
		}
		rec.Rows = append(rec.Rows, row)
		fmt.Fprintf(w, "  %-16s %14.0f %14.0f %8.2fx %8.1f%%\n",
			row.Design, row.InterpVectorsPerSec, row.CompiledVectorsPerSec,
			row.Speedup, row.TwoStateHitRate*100)
	}

	fmt.Fprintf(w, "  best speedup: %.2fx\n", rec.BestSpeedup)
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(out, '\n'), 0o644)
}

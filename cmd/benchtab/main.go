// Command benchtab regenerates the paper's evaluation tables and
// figures (§5) at a configurable budget and prints them as text. With
// -metrics it instead converts a campaign's telemetry snapshot (the
// JSON written by symbfuzz -metrics / served at /status) into a
// BENCH_obs.json performance record: vectors/sec, solves/sec, mean
// solve latency — the repo's bench trajectory format.
//
// Usage:
//
//	benchtab -exp table1
//	benchtab -exp table2 -budget 60000 -runs 4
//	benchtab -exp fig4 -budget 20000
//	benchtab -exp all
//	benchtab -metrics metrics.json -obs-out BENCH_obs.json
//
// -diff compares two bench records of the same schema as a
// perf-regression gate (warn past -warn-tol, exit 1 past -fail-tol):
//
//	benchtab -diff BENCH_obs.json -with BENCH_obs_new.json
//	benchtab -diff BENCH_prof.json -with BENCH_prof_new.json -warn-tol 0.10 -fail-tol 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|table2|table3|fig4|sec54|scalability|par|dist|flight|slice|prof|sim|fleet|watch|all (par, dist, flight, slice, prof, sim, fleet and watch never run under all)")
		budget     = flag.Uint64("budget", 0, "vector budget per IP run (0 = defaults)")
		soc        = flag.Uint64("soc-budget", 0, "vector budget for SoC curves")
		runs       = flag.Int("runs", 0, "runs averaged (figure 4, table 2)")
		seed       = flag.Int64("seed", 1, "base seed")
		metrics    = flag.String("metrics", "", "telemetry snapshot JSON (from symbfuzz -metrics); emits a perf record instead of running experiments")
		obsOut     = flag.String("obs-out", "BENCH_obs.json", "perf record output path (with -metrics)")
		parWorkers = flag.Int("par-workers", 4, "worker count for -exp par")
		parOut     = flag.String("par-out", "BENCH_par.json", "scaling record output path (with -exp par)")
		distOut    = flag.String("dist-out", "BENCH_dist.json", "wire-overhead record output path (with -exp dist)")
		flightOut  = flag.String("flight-out", "BENCH_flight.json", "span-overhead record output path (with -exp flight)")
		flightRuns = flag.Int("flight-runs", 3, "interleaved runs per arm for -exp flight")
		sliceOut   = flag.String("slice-out", "BENCH_slice.json", "slicing record output path (with -exp slice)")
		profOut    = flag.String("prof-out", "BENCH_prof.json", "profiler-overhead record output path (with -exp prof)")
		profRuns   = flag.Int("prof-runs", 3, "interleaved runs per arm for -exp prof")
		simOut     = flag.String("sim-out", "BENCH_sim.json", "backend-throughput record output path (with -exp sim)")
		fleetOut   = flag.String("fleet-out", "BENCH_fleet.json", "fleet wire-reduction record output path (with -exp fleet)")
		watchOut   = flag.String("watch-out", "BENCH_watch.json", "watch-plane overhead record output path (with -exp watch)")
		watchRuns  = flag.Int("watch-runs", 3, "interleaved runs per arm for -exp watch")
		simCycles  = flag.Int("sim-cycles", 2000, "vectors per design per run for -exp sim")
		simRuns    = flag.Int("sim-runs", 3, "interleaved runs per arm for -exp sim")
		diffBase   = flag.String("diff", "", "baseline bench record for the perf-regression gate")
		diffWith   = flag.String("with", "", "candidate bench record to compare against -diff")
		warnTol    = flag.Float64("warn-tol", 0.10, "relative regression that prints a warning (with -diff)")
		failTol    = flag.Float64("fail-tol", 0.25, "relative regression that exits nonzero (with -diff)")
	)
	flag.Parse()

	if *diffBase != "" || *diffWith != "" {
		if *diffBase == "" || *diffWith == "" {
			fmt.Fprintln(os.Stderr, "benchtab: -diff and -with must both be set")
			os.Exit(2)
		}
		failed, err := runDiff(*diffBase, *diffWith, *warnTol, *failTol, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: diff:", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	if *metrics != "" {
		if err := emitObsBench(*metrics, *obsOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		return
	}

	// The par experiment is wall-clock-sensitive (it times campaigns
	// against each other), so it only runs when asked for by name —
	// never as part of -exp all.
	if *exp == "par" {
		if err := runPar(*parWorkers, *seed, *parOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: par:", err)
			os.Exit(1)
		}
		return
	}

	// Same rule for dist: it races the in-process orchestrator against
	// the loopback wire protocol, so it is wall-clock-sensitive too.
	if *exp == "dist" {
		if err := runDistExp(2, *seed, *distOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: dist:", err)
			os.Exit(1)
		}
		return
	}

	// And for flight: it times the span layer against the nil-observer
	// no-op path, so it is wall-clock-sensitive too.
	if *exp == "flight" {
		if err := runFlight(*seed, *flightRuns, *flightOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: flight:", err)
			os.Exit(1)
		}
		return
	}

	// And for prof: it times the cost-profiler against the nil-profiler
	// no-op path, so it is wall-clock-sensitive too.
	if *exp == "prof" {
		if err := runProf(*seed, *profRuns, *profOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: prof:", err)
			os.Exit(1)
		}
		return
	}

	// And for sim: it races the interpreter against the compiled
	// backend on raw stepping throughput, so it is wall-clock-sensitive
	// too.
	if *exp == "sim" {
		if err := runSimExp(*simCycles, *simRuns, *seed, *simOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: sim:", err)
			os.Exit(1)
		}
		return
	}

	// And for fleet: it compares publish-plane wire bytes between the
	// sync-snapshot ablation and the delta-batched default, and times
	// aggregate multi-campaign throughput — wall-clock-sensitive too.
	if *exp == "fleet" {
		if err := runFleetExp(*seed, *fleetOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: fleet:", err)
			os.Exit(1)
		}
		return
	}

	// And for watch: it times the streaming health plane against the
	// nil-hook path, so it is wall-clock-sensitive too.
	if *exp == "watch" {
		if err := runWatchExp(*seed, *watchRuns, *watchOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: watch:", err)
			os.Exit(1)
		}
		return
	}

	// And for slice: it compares mean per-dispatch blast wall time
	// between the sliced path and the DisableSlicing ablation.
	if *exp == "slice" {
		if err := runSlice(*seed, *sliceOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: slice:", err)
			os.Exit(1)
		}
		return
	}

	c := eval.Config{
		BudgetIP:  *budget,
		BudgetSoC: *soc,
		Runs:      *runs,
		Seed:      *seed,
		Interval:  100,
		Threshold: 2,
	}
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := eval.RunTable1(c)
		if err != nil {
			return err
		}
		eval.WriteTable1(os.Stdout, rows)
		return nil
	})
	run("table2", func() error {
		rows, err := eval.RunTable2(c)
		if err != nil {
			return err
		}
		eval.WriteTable2(os.Stdout, rows)
		return nil
	})
	run("table3", func() error {
		rows, err := eval.RunTable3(c)
		if err != nil {
			return err
		}
		eval.WriteTable3(os.Stdout, rows)
		return nil
	})
	run("fig4", func() error {
		fig, err := eval.RunFigure4(c)
		if err != nil {
			return err
		}
		eval.WriteFigure4a(os.Stdout, fig)
		fmt.Println()
		eval.WriteFigure4b(os.Stdout, fig)
		fmt.Println(eval.Summary(fig))
		return nil
	})
	run("sec54", func() error {
		rows, err := eval.RunSection54(c)
		if err != nil {
			return err
		}
		eval.WriteSection54(os.Stdout, rows)
		return nil
	})
	run("scalability", func() error {
		s, err := eval.RunScalability(c)
		if err != nil {
			return err
		}
		eval.WriteScalability(os.Stdout, s)
		return nil
	})
}

// ObsBench is the BENCH_obs.json performance record derived from one
// campaign's telemetry snapshot.
type ObsBench struct {
	Schema string `json:"schema"`

	WallNS         int64   `json:"wall_ns"`
	Vectors        int64   `json:"vectors"`
	Cycles         int64   `json:"cycles"`
	CoveragePoints int64   `json:"coverage_points"`
	VectorsPerSec  float64 `json:"vectors_per_sec"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`

	SolverDispatches int64   `json:"solver_dispatches"`
	SolvesPerSec     float64 `json:"solves_per_sec"`
	MeanSolveNS      int64   `json:"mean_solve_ns"`
	MeanBlastNS      int64   `json:"mean_blast_ns"`
	MeanIntervalNS   int64   `json:"mean_interval_ns"`

	Rollbacks       int64 `json:"rollbacks"`
	MeanRollbackNS  int64 `json:"mean_rollback_ns"`
	Checkpoints     int64 `json:"checkpoints"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	CovDropped      int64 `json:"cov_events_dropped"`
	BugsFound       int64 `json:"bugs_found"`
}

// emitObsBench converts a telemetry snapshot into the perf record.
func emitObsBench(metricsPath, outPath string) error {
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		return err
	}
	var snap obs.StatusSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", metricsPath, err)
	}
	if snap.Schema != obs.SnapshotSchema {
		return fmt.Errorf("%s: schema %q, want %q", metricsPath, snap.Schema, obs.SnapshotSchema)
	}
	m := snap.Metrics
	perSec := func(n int64) float64 {
		if snap.UptimeNS == 0 {
			return 0
		}
		return float64(n) / (float64(snap.UptimeNS) / 1e9)
	}
	hist := func(name string) obs.HistogramSnapshot { return m.Histograms[name] }
	b := ObsBench{
		Schema:           "symbfuzz-bench-obs/v1",
		WallNS:           snap.UptimeNS,
		Vectors:          m.Gauges["vectors_applied"],
		Cycles:           m.Gauges["cycles"],
		CoveragePoints:   m.Gauges["coverage_points"],
		VectorsPerSec:    perSec(m.Gauges["vectors_applied"]),
		CyclesPerSec:     perSec(m.Gauges["cycles"]),
		SolverDispatches: m.Counters["solver_dispatches"],
		SolvesPerSec:     perSec(m.Counters["solver_dispatches"]),
		MeanSolveNS:      hist("solver_cdcl_ns").Mean + hist("solver_blast_ns").Mean,
		MeanBlastNS:      hist("solver_blast_ns").Mean,
		MeanIntervalNS:   hist("fuzz_interval_ns").Mean,
		Rollbacks:        m.Counters["rollbacks_snapshot"] + m.Counters["rollbacks_replay"],
		MeanRollbackNS:   hist("rollback_ns").Mean,
		Checkpoints:      m.Counters["checkpoints"],
		CheckpointBytes:  m.Counters["checkpoint_bytes"],
		CovDropped:       m.Counters["cov_events_dropped"],
		BugsFound:        m.Counters["bugs_found"],
	}
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %.0f vectors/sec, %.2f solves/sec, mean solve %dus over %.1fs\n",
		outPath, b.VectorsPerSec, b.SolvesPerSec, b.MeanSolveNS/1000, float64(b.WallNS)/1e9)
	return nil
}

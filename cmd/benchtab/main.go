// Command benchtab regenerates the paper's evaluation tables and
// figures (§5) at a configurable budget and prints them as text.
//
// Usage:
//
//	benchtab -exp table1
//	benchtab -exp table2 -budget 60000 -runs 4
//	benchtab -exp fig4 -budget 20000
//	benchtab -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1|table2|table3|fig4|sec54|scalability|all")
		budget = flag.Uint64("budget", 0, "vector budget per IP run (0 = defaults)")
		soc    = flag.Uint64("soc-budget", 0, "vector budget for SoC curves")
		runs   = flag.Int("runs", 0, "runs averaged (figure 4, table 2)")
		seed   = flag.Int64("seed", 1, "base seed")
	)
	flag.Parse()

	c := eval.Config{
		BudgetIP:  *budget,
		BudgetSoC: *soc,
		Runs:      *runs,
		Seed:      *seed,
		Interval:  100,
		Threshold: 2,
	}
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := eval.RunTable1(c)
		if err != nil {
			return err
		}
		eval.WriteTable1(os.Stdout, rows)
		return nil
	})
	run("table2", func() error {
		rows, err := eval.RunTable2(c)
		if err != nil {
			return err
		}
		eval.WriteTable2(os.Stdout, rows)
		return nil
	})
	run("table3", func() error {
		rows, err := eval.RunTable3(c)
		if err != nil {
			return err
		}
		eval.WriteTable3(os.Stdout, rows)
		return nil
	})
	run("fig4", func() error {
		fig, err := eval.RunFigure4(c)
		if err != nil {
			return err
		}
		eval.WriteFigure4a(os.Stdout, fig)
		fmt.Println()
		eval.WriteFigure4b(os.Stdout, fig)
		fmt.Println(eval.Summary(fig))
		return nil
	})
	run("sec54", func() error {
		rows, err := eval.RunSection54(c)
		if err != nil {
			return err
		}
		eval.WriteSection54(os.Stdout, rows)
		return nil
	})
	run("scalability", func() error {
		s, err := eval.RunScalability(c)
		if err != nil {
			return err
		}
		eval.WriteScalability(os.Stdout, s)
		return nil
	})
}

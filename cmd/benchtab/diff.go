package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// benchtab -diff is the repo's perf-regression gate: it compares any
// two bench records of the same schema (BENCH_obs.json,
// BENCH_slice.json, BENCH_flight.json, BENCH_prof.json, ...) metric by
// metric, with each schema declaring which of its fields are
// performance metrics and which direction is better. A metric that
// moves the wrong way past -warn-tol prints a warning; past -fail-tol
// the diff exits nonzero — warn-then-fail, so CI can keep a soft gate
// while the tolerance is tuned.

// metricDef declares one gated metric: a dotted JSON path ("*" matches
// any array index) and the direction of goodness.
type metricDef struct {
	path           string
	higherIsBetter bool
}

// diffMetrics is the per-schema metric registry. Fields not listed
// here (counts, byte sizes, notes, wall-clock raw values already
// summarized by a ratio) are informational, not gated.
var diffMetrics = map[string][]metricDef{
	"symbfuzz-bench-obs/v1": {
		{"vectors_per_sec", true},
		{"cycles_per_sec", true},
		{"solves_per_sec", true},
		{"mean_solve_ns", false},
		{"mean_blast_ns", false},
		{"mean_interval_ns", false},
		{"mean_rollback_ns", false},
	},
	"symbfuzz-bench-slice/v1": {
		{"rows.*.blast_reduction", true},
	},
	"symbfuzz-bench-flight/v1": {
		{"overhead", false},
	},
	"symbfuzz-bench-prof/v1": {
		{"overhead", false},
	},
	"symbfuzz-bench-par/v1": {
		{"rows.*.wall_speedup", true},
		{"rows.*.vector_efficiency", true},
	},
	"symbfuzz-bench-dist/v1": {
		{"rows.*.wire_overhead", false},
	},
	"symbfuzz-bench-fleet/v1": {
		{"rows.*.publish_reduction", true},
		{"fleet_vectors_per_sec", true},
	},
	"symbfuzz-bench-watch/v1": {
		{"overhead", false},
	},
	"symbfuzz-bench-sim/v1": {
		{"rows.*.interp_vectors_per_sec", true},
		{"rows.*.compiled_vectors_per_sec", true},
		{"rows.*.speedup", true},
		{"best_speedup", true},
	},
}

// runDiff compares baseline -> candidate. Returns true when at least
// one metric regressed past failTol.
func runDiff(basePath, newPath string, warnTol, failTol float64, w io.Writer) (bool, error) {
	base, baseSchema, err := readRecord(basePath)
	if err != nil {
		return false, err
	}
	cand, candSchema, err := readRecord(newPath)
	if err != nil {
		return false, err
	}
	if baseSchema != candSchema {
		return false, fmt.Errorf("schema mismatch: %s is %q, %s is %q", basePath, baseSchema, newPath, candSchema)
	}
	metrics, ok := diffMetrics[baseSchema]
	if !ok {
		return false, fmt.Errorf("no metric registry for schema %q", baseSchema)
	}
	if failTol < warnTol {
		return false, fmt.Errorf("-fail-tol (%.2f) must be >= -warn-tol (%.2f)", failTol, warnTol)
	}

	fmt.Fprintf(w, "perf diff (%s): %s -> %s  [warn > %.0f%%, fail > %.0f%%]\n",
		baseSchema, basePath, newPath, warnTol*100, failTol*100)
	fmt.Fprintf(w, "  %-34s %14s %14s %9s  %s\n", "metric", "baseline", "candidate", "change", "verdict")

	failed := false
	compared := 0
	for _, m := range metrics {
		paths := matchPaths(base, m.path)
		for _, p := range paths {
			ov, ook := lookupNumber(base, p)
			nv, nok := lookupNumber(cand, p)
			if !ook || !nok {
				continue
			}
			compared++
			change, worse := relChange(ov, nv, m.higherIsBetter)
			verdict := "ok"
			switch {
			case worse > failTol:
				verdict = "FAIL"
				failed = true
			case worse > warnTol:
				verdict = "warn"
			}
			fmt.Fprintf(w, "  %-34s %14.4g %14.4g %+8.1f%%  %s\n", p, ov, nv, change*100, verdict)
		}
	}
	if compared == 0 {
		return false, fmt.Errorf("no comparable metrics between %s and %s", basePath, newPath)
	}
	if failed {
		fmt.Fprintf(w, "perf diff: REGRESSION beyond %.0f%% tolerance\n", failTol*100)
	}
	return failed, nil
}

// relChange returns the signed relative change and how much of it is
// in the "worse" direction (0 when the metric moved the right way).
func relChange(oldV, newV float64, higherIsBetter bool) (change, worse float64) {
	if oldV == 0 {
		return 0, 0 // nothing to normalize against
	}
	change = (newV - oldV) / oldV
	if oldV < 0 {
		change = -change // preserve "higher is better" semantics
	}
	if higherIsBetter {
		worse = -change
	} else {
		worse = change
	}
	if worse < 0 {
		worse = 0
	}
	return change, worse
}

func readRecord(path string) (map[string]any, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	schema, _ := rec["schema"].(string)
	if schema == "" {
		return nil, "", fmt.Errorf("%s: no schema field", path)
	}
	return rec, schema, nil
}

// matchPaths expands a metric path against the baseline document,
// resolving each "*" segment to the array indices present. Results are
// sorted so the diff output order is stable.
func matchPaths(doc map[string]any, pattern string) []string {
	segs := strings.Split(pattern, ".")
	paths := expand(doc, segs, "")
	sort.Strings(paths)
	return paths
}

func expand(node any, segs []string, prefix string) []string {
	if len(segs) == 0 {
		return []string{strings.TrimPrefix(prefix, ".")}
	}
	seg, rest := segs[0], segs[1:]
	switch n := node.(type) {
	case map[string]any:
		child, ok := n[seg]
		if !ok {
			return nil
		}
		return expand(child, rest, prefix+"."+seg)
	case []any:
		if seg != "*" {
			return nil
		}
		var out []string
		for i, child := range n {
			out = append(out, expand(child, rest, fmt.Sprintf("%s.%d", prefix, i))...)
		}
		return out
	}
	return nil
}

// lookupNumber resolves a concrete dotted path to a float64.
func lookupNumber(doc map[string]any, path string) (float64, bool) {
	var node any = doc
	for _, seg := range strings.Split(path, ".") {
		switch n := node.(type) {
		case map[string]any:
			node = n[seg]
		case []any:
			idx := 0
			if _, err := fmt.Sscanf(seg, "%d", &idx); err != nil || idx < 0 || idx >= len(n) {
				return 0, false
			}
			node = n[idx]
		default:
			return 0, false
		}
	}
	v, ok := node.(float64)
	return v, ok
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/fleet"
)

// The watch experiment measures what the streaming health plane costs:
// the same fixed-budget 2-worker fleet campaign runs with the watch
// plane enabled (publish/solve hooks feeding the health engine, the
// periodic sweep, alert journaling, the subscription bus) and with it
// disabled (the nil-hook path the zero-alloc test pins). Runs
// interleave and each arm keeps its minimum wall time, mirroring the
// flight and prof experiments. Both arms must produce identical merged
// coverage — the watch plane is an observer, never a participant. The
// record is written as BENCH_watch.json and the experiment fails if
// watching costs more than 5% wall time.

// WatchBench is the BENCH_watch.json record.
type WatchBench struct {
	Schema  string `json:"schema"`
	Bench   string `json:"bench"`
	Budget  uint64 `json:"budget"`
	Workers int    `json:"workers"`
	Runs    int    `json:"runs"`
	Cores   int    `json:"cores"`
	Seed    int64  `json:"seed"`
	Note    string `json:"note"`

	WatchWallNS   int64 `json:"watch_wall_ns"`
	NoWatchWallNS int64 `json:"no_watch_wall_ns"`

	// AlertsJournaled counts the alerts the watched arm raised (the
	// plane must actually do its work to be worth timing).
	AlertsJournaled int  `json:"alerts_journaled"`
	MergedEqual     bool `json:"merged_equal"`

	// Overhead is watch-on wall over watch-off wall (min of Runs
	// interleaved runs per arm).
	Overhead float64 `json:"overhead"`
	Within5  bool    `json:"within_5pct"`
}

// watchBudget stretches well past scmi_mailbox's coverage saturation:
// the run must be long enough that per-run fixed costs (server
// startup, worker join) amortize out of the overhead ratio.
const (
	watchBudget  = 12000
	watchWorkers = 2
)

func runWatchExp(seed int64, runs int, outPath string, w io.Writer) error {
	if runs < 1 {
		runs = 5
	}
	spec := dist.CampaignSpec{
		Bench:                 "scmi_mailbox",
		Interval:              50,
		Threshold:             2,
		MaxVectors:            watchBudget,
		Seed:                  seed,
		Workers:               watchWorkers,
		UseSnapshots:          true,
		ContinueAfterCoverage: true,
	}

	var rec WatchBench
	minWatch, minPlain := int64(0), int64(0)
	var refVectors uint64
	var refPoints int
	rec.MergedEqual = true
	for i := 0; i < runs; i++ {
		for _, watched := range []bool{true, false} {
			wall, vectors, points, alerts, err := runWatchArm(spec, watched, seed)
			if err != nil {
				return fmt.Errorf("watch: run %d (watch=%v): %w", i, watched, err)
			}
			if refVectors == 0 {
				refVectors, refPoints = vectors, points
			} else if vectors != refVectors || points != refPoints {
				rec.MergedEqual = false
			}
			if watched {
				rec.AlertsJournaled = alerts
				if minWatch == 0 || wall < minWatch {
					minWatch = wall
				}
			} else if minPlain == 0 || wall < minPlain {
				minPlain = wall
			}
		}
	}

	rec.Schema = "symbfuzz-bench-watch/v1"
	rec.Bench = spec.Bench
	rec.Budget = watchBudget
	rec.Workers = watchWorkers
	rec.Runs = runs
	rec.Cores = runtime.NumCPU()
	rec.Seed = seed
	rec.Note = "watch arm hosts the campaign with the streaming health plane on (hooks, sweep, " +
		"alert journal, bus); the no-watch arm runs the nil-hook path; each arm keeps its " +
		"minimum wall time over interleaved runs, and both arms' merged coverage is asserted equal"
	rec.WatchWallNS = minWatch
	rec.NoWatchWallNS = minPlain
	rec.Overhead = float64(minWatch) / float64(minPlain)
	rec.Within5 = rec.Overhead <= 1.05

	fmt.Fprintf(w, "Watch-plane overhead (%s, %d vectors, %d workers, min of %d runs per arm)\n",
		spec.Bench, watchBudget, watchWorkers, runs)
	fmt.Fprintf(w, "  watch on:  %10.2fms  (%d alerts journaled)\n",
		float64(rec.WatchWallNS)/1e6, rec.AlertsJournaled)
	fmt.Fprintf(w, "  watch off: %10.2fms\n", float64(rec.NoWatchWallNS)/1e6)
	fmt.Fprintf(w, "  overhead:  %10.4fx\n", rec.Overhead)
	if !rec.MergedEqual {
		fmt.Fprintln(w, "  WARNING: merged coverage diverged between arms")
	}

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	if !rec.MergedEqual {
		return fmt.Errorf("watch: merged coverage diverged between watched and unwatched arms")
	}
	if !rec.Within5 {
		return fmt.Errorf("watch: watching costs %.2f%% wall time, budget is 5%%",
			(rec.Overhead-1)*100)
	}
	return nil
}

// runWatchArm hosts one fleet server (watched or not), runs the
// campaign to completion, and returns the wall time plus the merged
// totals and journaled alert count.
func runWatchArm(spec dist.CampaignSpec, watched bool, seed int64) (wall int64, vectors uint64, points, alerts int, err error) {
	dir, err := os.MkdirTemp("", "benchwatch")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer os.RemoveAll(dir)

	srv, err := fleet.NewServer("127.0.0.1:0", fleet.Config{
		JournalDir: dir,
		Watch:      watched,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer srv.Shutdown(context.Background())

	body, err := json.Marshal(fleet.CreateRequest{Name: "watchbench", Spec: spec})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	start := time.Now()
	resp, err := http.Post("http://"+srv.Addr()+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return 0, 0, 0, 0, fmt.Errorf("create: status %d", resp.StatusCode)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, spec.Workers)
	for i := 0; i < spec.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = dist.RunWorker(ctx, dist.WorkerConfig{
				Addr:     srv.Addr(),
				Campaign: "watchbench",
				WorkerID: fmt.Sprintf("wb-w%d", i),
				RankHint: i,
			})
		}(i)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			return 0, 0, 0, 0, fmt.Errorf("worker %d: %w", i, werr)
		}
	}
	rep, err := srv.WaitCampaign(ctx, "watchbench")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	wall = int64(time.Since(start))

	if watched {
		var snap fleet.WatchSnapshot
		sresp, err := http.Get("http://" + srv.Addr() + "/v1/watch/snapshot")
		if err == nil {
			if json.NewDecoder(sresp.Body).Decode(&snap) == nil {
				for _, h := range snap.Campaigns {
					alerts += h.AlertsTotal
				}
			}
			sresp.Body.Close()
		}
	}
	return wall, rep.Merged.Vectors, rep.Merged.FinalPoints, alerts, nil
}

// Command hdlsim simulates an HDL design with random stimulus and
// writes a VCD trace, exercising the four-state simulator standalone.
//
// Usage:
//
//	hdlsim -src design.sv -top mymodule -cycles 200 -vcd out.vcd
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	symbfuzz "repro"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/uvm"
	"repro/internal/vcd"
)

func main() {
	var (
		srcF    = flag.String("src", "", "HDL source file")
		top     = flag.String("top", "", "top module")
		cycles  = flag.Int("cycles", 100, "clock cycles to simulate")
		seed    = flag.Int64("seed", 1, "stimulus seed")
		vcdOut  = flag.String("vcd", "", "VCD output file (optional)")
		simBack = flag.String("sim", "interp", "simulation backend: interp or compiled")
	)
	flag.Parse()
	if *srcF == "" || *top == "" {
		fmt.Fprintln(os.Stderr, "hdlsim: -src and -top are required")
		os.Exit(1)
	}
	data, err := os.ReadFile(*srcF)
	if err != nil {
		fail(err)
	}
	d, err := symbfuzz.ParseAndElaborate(string(data), *top)
	if err != nil {
		fail(err)
	}
	s, err := uvm.NewBackend(d, *simBack)
	if err != nil {
		fail(err)
	}
	info := sim.DetectClockReset(d)

	var w *vcd.Writer
	if *vcdOut != "" {
		f, err := os.Create(*vcdOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = vcd.NewWriter(f)
		for _, sig := range d.Signals {
			w.Declare(sig.Name, sig.Width)
		}
		s.OnCycle(func(sm sim.DUV) {
			_ = w.Sample(sm.Cycle(), func(name string) logic.BV {
				idx := sm.SignalIndex(name)
				if idx < 0 {
					return logic.X(1)
				}
				return sm.Get(idx)
			})
		})
	}

	if err := s.ApplyReset(info, 2); err != nil {
		fail(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *cycles; i++ {
		for _, in := range d.InputSignals() {
			if in.Index == info.Clock || in.Index == info.Reset {
				continue
			}
			s.Set(in.Index, logic.Rand(in.Width, rng.Uint64))
		}
		if info.Clock >= 0 {
			if err := s.Tick(info.Clock); err != nil {
				fail(err)
			}
		} else {
			if err := s.Settle(); err != nil {
				fail(err)
			}
			s.AdvanceCycle()
		}
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			fail(err)
		}
	}
	fmt.Printf("simulated %d cycles of %s\n", *cycles, *top)
	for _, out := range d.OutputSignals() {
		fmt.Printf("  %-24s = %s\n", out.Name, s.Get(out.Index))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hdlsim:", err)
	os.Exit(1)
}
